package websocket

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"migratorydata/internal/transport"
)

// pair returns a connected client/server WebSocket pair over an inproc pipe.
func pair(t *testing.T) (client, server *Conn) {
	t.Helper()
	a, b := transport.NewPipe(
		transport.Addr{Net: "inproc", Address: "ws-client"},
		transport.Addr{Net: "inproc", Address: "ws-server"},
	)
	var wg sync.WaitGroup
	var serr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		server, serr = ServerHandshake(b)
	}()
	c, cerr := ClientHandshake(a, "test", "/ws")
	wg.Wait()
	if cerr != nil || serr != nil {
		t.Fatalf("handshake: client=%v server=%v", cerr, serr)
	}
	t.Cleanup(func() {
		c.Close()
		server.Close()
	})
	return c, server
}

func TestHandshakeAndEcho(t *testing.T) {
	client, server := pair(t)
	msg := []byte("hello websocket")
	if err := client.WriteMessage(OpBinary, msg); err != nil {
		t.Fatal(err)
	}
	op, got, err := server.ReadMessage()
	if err != nil || op != OpBinary || !bytes.Equal(got, msg) {
		t.Fatalf("server read: %v %q %v", op, got, err)
	}
	if err := server.WriteMessage(OpText, []byte("reply")); err != nil {
		t.Fatal(err)
	}
	op, got, err = client.ReadMessage()
	if err != nil || op != OpText || string(got) != "reply" {
		t.Fatalf("client read: %v %q %v", op, got, err)
	}
}

func TestLargeMessageExtendedLength(t *testing.T) {
	client, server := pair(t)
	// >64KB forces the 8-byte extended length; >125 forces the 2-byte one.
	for _, size := range []int{126, 65535, 65536, 1 << 20} {
		msg := bytes.Repeat([]byte{byte(size)}, size)
		// Write from a goroutine: messages larger than the pipe buffer
		// need the reader draining concurrently.
		writeErr := make(chan error, 1)
		go func() { writeErr <- client.WriteMessage(OpBinary, msg) }()
		_, got, err := server.ReadMessage()
		if werr := <-writeErr; werr != nil {
			t.Fatal(werr)
		}
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatalf("size %d: len(got)=%d err=%v", size, len(got), err)
		}
	}
}

func TestMaskingRoundTrip(t *testing.T) {
	// Client→server frames are masked on the wire; verify the payload is
	// still recovered exactly (the mask must not leak through).
	client, server := pair(t)
	msg := make([]byte, 1000)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	client.WriteMessage(OpBinary, msg)
	_, got, err := server.ReadMessage()
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("masked round trip failed: %v", err)
	}
}

func TestPingAutoPong(t *testing.T) {
	client, server := pair(t)
	if err := client.WriteControl(OpPing, []byte("alive?")); err != nil {
		t.Fatal(err)
	}
	// Server's next ReadMessage auto-pongs; give it a data message so the
	// call returns.
	go func() {
		client.WriteMessage(OpBinary, []byte("data"))
	}()
	_, got, err := server.ReadMessage()
	if err != nil || string(got) != "data" {
		t.Fatalf("server read after ping: %q %v", got, err)
	}
	// Client should now find the pong transparently skipped too.
	go server.WriteMessage(OpBinary, []byte("data2"))
	_, got, err = client.ReadMessage()
	if err != nil || string(got) != "data2" {
		t.Fatalf("client read after pong: %q %v", got, err)
	}
}

func TestCloseHandshake(t *testing.T) {
	client, server := pair(t)
	go client.CloseWithCode(CloseGoingAway, "bye")
	_, _, err := server.ReadMessage()
	var ce *CloseError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CloseError", err)
	}
	if ce.Code != CloseGoingAway || ce.Reason != "bye" {
		t.Fatalf("close = %d %q", ce.Code, ce.Reason)
	}
	if !strings.Contains(ce.Error(), "1001") {
		t.Fatalf("CloseError.Error() = %q", ce.Error())
	}
}

func TestServerRejectsUnmaskedClientFrame(t *testing.T) {
	a, b := transport.NewPipe(
		transport.Addr{Net: "inproc", Address: "c"},
		transport.Addr{Net: "inproc", Address: "s"},
	)
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	var server *Conn
	wg.Add(1)
	go func() {
		defer wg.Done()
		server, _ = ServerHandshake(b)
	}()
	client, err := ClientHandshake(a, "test", "/")
	wg.Wait()
	if err != nil || server == nil {
		t.Fatal("handshake failed")
	}
	// Forge an unmasked frame directly on the transport.
	raw := appendFrameHeader(nil, true, OpBinary, false, [4]byte{}, 3)
	raw = append(raw, "abc"...)
	a.Write(raw)
	if _, _, err := server.ReadMessage(); !errors.Is(err, ErrUnmaskedClient) {
		t.Fatalf("err = %v, want ErrUnmaskedClient", err)
	}
	client.Close()
	server.Close()
}

func TestControlFrameTooLong(t *testing.T) {
	client, _ := pair(t)
	if err := client.WriteControl(OpPing, make([]byte, 126)); !errors.Is(err, ErrControlTooLong) {
		t.Fatalf("err = %v, want ErrControlTooLong", err)
	}
}

func TestWriteMessageRejectsControlOpcode(t *testing.T) {
	client, _ := pair(t)
	if err := client.WriteMessage(OpPing, nil); err == nil {
		t.Fatal("WriteMessage(OpPing) should fail")
	}
	if err := client.WriteControl(OpBinary, nil); err == nil {
		t.Fatal("WriteControl(OpBinary) should fail")
	}
}

func TestMaxMessageSize(t *testing.T) {
	client, server := pair(t)
	server.SetMaxMessageSize(10)
	client.WriteMessage(OpBinary, make([]byte, 11))
	if _, _, err := server.ReadMessage(); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("err = %v, want ErrMessageTooLarge", err)
	}
}

func TestAcceptKeyRFCVector(t *testing.T) {
	// Known-answer test from RFC 6455 §1.3.
	got := acceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got != want {
		t.Fatalf("acceptKey = %q, want %q", got, want)
	}
}

func TestHandshakeRejectsNonUpgrade(t *testing.T) {
	a, b := transport.NewPipe(
		transport.Addr{Net: "inproc", Address: "c"},
		transport.Addr{Net: "inproc", Address: "s"},
	)
	defer a.Close()
	defer b.Close()
	go a.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	if _, err := ServerHandshake(b); !errors.Is(err, ErrNotWebSocket) {
		t.Fatalf("err = %v, want ErrNotWebSocket", err)
	}
}

func TestHandshakeRejectsBadVersion(t *testing.T) {
	a, b := transport.NewPipe(
		transport.Addr{Net: "inproc", Address: "c"},
		transport.Addr{Net: "inproc", Address: "s"},
	)
	defer a.Close()
	defer b.Close()
	go a.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Key: AAAAAAAAAAAAAAAAAAAAAA==\r\nSec-WebSocket-Version: 8\r\n\r\n"))
	if _, err := ServerHandshake(b); !errors.Is(err, ErrNotWebSocket) {
		t.Fatalf("err = %v, want ErrNotWebSocket", err)
	}
}

func TestConcurrentWriters(t *testing.T) {
	client, server := pair(t)
	const writers = 4
	const perWriter = 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := client.WriteMessage(OpBinary, []byte{byte(w)}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	received := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for received < writers*perWriter {
			_, _, err := server.ReadMessage()
			if err != nil {
				t.Errorf("read %d: %v", received, err)
				return
			}
			received++
		}
	}()
	wg.Wait()
	<-done
	if received != writers*perWriter {
		t.Fatalf("received %d messages, want %d", received, writers*perWriter)
	}
}

func BenchmarkEcho140B(b *testing.B) {
	a, c := transport.NewPipe(
		transport.Addr{Net: "inproc", Address: "c"},
		transport.Addr{Net: "inproc", Address: "s"},
	)
	var server *Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		server, _ = ServerHandshake(c)
	}()
	client, err := ClientHandshake(a, "bench", "/")
	wg.Wait()
	if err != nil || server == nil {
		b.Fatal("handshake failed")
	}
	defer client.Close()
	defer server.Close()
	go func() {
		for {
			op, msg, err := server.ReadMessage()
			if err != nil {
				return
			}
			server.WriteMessage(op, msg)
		}
	}()
	payload := make([]byte, 140)
	b.SetBytes(140)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.WriteMessage(OpBinary, payload); err != nil {
			b.Fatal(err)
		}
		if _, _, err := client.ReadMessage(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestServerSequentialWritesScratchReuse exercises the server's vectored
// write path (scratch header + net.Buffers): back-to-back unmasked writes of
// varying sizes must not corrupt each other through the reused scratch, the
// payload must arrive unmutated, and a pooled payload allocator must be
// used for data frames.
func TestServerSequentialWritesScratchReuse(t *testing.T) {
	client, server := pair(t)
	sizes := []int{0, 1, 125, 126, 4096, 65535, 65536}
	done := make(chan error, 1)
	go func() {
		for _, size := range sizes {
			msg := bytes.Repeat([]byte{byte(size % 251)}, size)
			if err := server.WriteMessage(OpBinary, msg); err != nil {
				done <- err
				return
			}
			// The caller's payload must not have been mutated (the server
			// path writes it zero-copy, no masking).
			for i := range msg {
				if msg[i] != byte(size%251) {
					done <- errors.New("server write mutated the payload")
					return
				}
			}
		}
		done <- nil
	}()
	var allocCalls int
	client.SetPayloadAlloc(func(n int) []byte {
		allocCalls++
		return make([]byte, n)
	})
	for _, size := range sizes {
		_, got, err := client.ReadMessage()
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if len(got) != size {
			t.Fatalf("size %d: got %d bytes", size, len(got))
		}
		for i := range got {
			if got[i] != byte(size%251) {
				t.Fatalf("size %d: payload corrupted at %d", size, i)
			}
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if allocCalls != len(sizes) {
		t.Fatalf("payload allocator used for %d of %d data frames", allocCalls, len(sizes))
	}
}
