// Command migratorydata runs a MigratoryData server.
//
// Single node (the paper's §4 engine):
//
//	migratorydata -listen :8800
//
// In-process cluster (the paper's §5 deployment; N members in one process,
// each with its own listener on consecutive ports):
//
//	migratorydata -listen :8800 -cluster 3
//
// Clients connect over WebSocket by default (-mode raw for raw framing).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"migratorydata/internal/capture"
	"migratorydata/internal/seglog"
	"migratorydata/server"
)

func main() {
	var (
		listen       = flag.String("listen", ":8800", "listen address (host:port); cluster members use consecutive ports")
		mode         = flag.String("mode", "ws", "client framing: ws or raw")
		clusterSize  = flag.Int("cluster", 1, "number of cluster members to run in this process (1 = single node)")
		ioThreads    = flag.Int("iothreads", 0, "I/O threads per member (0 = GOMAXPROCS)")
		workers      = flag.Int("workers", 0, "worker threads per member (0 = GOMAXPROCS)")
		groups       = flag.Int("topic-groups", 100, "topic groups (cache/coordinator sharding)")
		cacheCap     = flag.Int("cache", 1024, "history cache entries per topic")
		batchDelay   = flag.Duration("batch-delay", 0, "output batching delay (0 = off)")
		batchBytes   = flag.Int("batch-bytes", 32768, "output batching size trigger")
		conflation   = flag.Duration("conflation", 0, "per-topic conflation interval (0 = off)")
		egressBudget = flag.Int("egress-budget", 0, "per-client egress byte budget for slow-consumer protection (0 = default 1MiB, negative = off)")
		dataDir      = flag.String("data-dir", "", "durable history directory: crash-safe segment log, replayed at startup (single node only; off by default)")
		fsyncPolicy  = flag.String("fsync", "interval", "segment-log fsync policy: interval (default, 100ms), never, always, or a duration like 250ms")
		statsEvery   = flag.Duration("stats", 10*time.Second, "stats print interval (0 = off)")
		recordPath   = flag.String("record", "", "record all client traffic to this capture file (replay with mdreplay; off by default)")
		metricsAddr  = flag.String("metrics", "", "serve Prometheus metrics on this address at /metrics (off by default)")
		verbose      = flag.Bool("v", false, "verbose logging")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{
		Level: map[bool]slog.Level{true: slog.LevelDebug, false: slog.LevelInfo}[*verbose],
	}))

	fsync, err := seglog.ParsePolicy(*fsyncPolicy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -fsync %q: %v\n", *fsyncPolicy, err)
		os.Exit(1)
	}
	if *dataDir != "" && *clusterSize > 1 {
		fmt.Fprintln(os.Stderr, "-data-dir is single-node only: cluster durability is replication, not a local log")
		os.Exit(1)
	}

	host, portStr, err := net.SplitHostPort(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -listen %q: %v\n", *listen, err)
		os.Exit(1)
	}
	basePort, err := strconv.Atoi(portStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad port %q: %v\n", portStr, err)
		os.Exit(1)
	}

	// Traffic recording (-record): one capture file taps every member's
	// ingest/egress spine. Nil recorder (the default) costs the hot path a
	// single nil-check branch.
	var recorder *capture.Recorder
	if *recordPath != "" {
		f, err := os.Create(*recordPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot create -record file: %v\n", err)
			os.Exit(1)
		}
		recorder, err = capture.NewRecorder(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot start recorder: %v\n", err)
			os.Exit(1)
		}
		logger.Info("recording traffic", "file", *recordPath)
	}

	memberCfg := func(i int) server.Config {
		return server.Config{
			ID:                 fmt.Sprintf("server-%d", i+1),
			ListenNetwork:      "tcp",
			ListenAddr:         net.JoinHostPort(host, strconv.Itoa(basePort+i)),
			Mode:               *mode,
			IoThreads:          *ioThreads,
			Workers:            *workers,
			TopicGroups:        *groups,
			CacheCapacity:      *cacheCap,
			BatchMaxBytes:      *batchBytes,
			BatchMaxDelay:      *batchDelay,
			ConflationInterval: *conflation,
			EgressBudgetBytes:  *egressBudget,
			DataDir:            *dataDir,
			Fsync:              fsync,
			Recorder:           recorder,
			Logger:             logger,
		}
	}

	var servers []*server.Server
	if *clusterSize <= 1 {
		srv, err := server.Open(memberCfg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := srv.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		servers = append(servers, srv)
		logger.Info("single-node server listening", "addr", srv.Addr(), "mode", *mode)
		if *dataDir != "" {
			logger.Info("durable history enabled", "data_dir", *dataDir, "fsync", fsync.String())
		}
	} else {
		members := make([]server.Config, *clusterSize)
		for i := range members {
			members[i] = memberCfg(i)
		}
		clu, err := server.NewCluster(server.ClusterSpec{Members: members})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := clu.WaitReady(10 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		servers = clu.Servers
		for _, s := range servers {
			logger.Info("cluster member listening", "id", s.ID(), "addr", s.Addr(), "mode", *mode)
		}
	}

	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for range t.C {
				for _, s := range servers {
					st := s.Stats()
					logger.Info("stats", "id", s.ID(),
						"connections", st.Connections,
						"published", st.Published,
						"delivered", st.Delivered,
						"deliver_events_routed", st.DeliverRouted,
						"deliver_events_skipped", st.DeliverSkipped,
						"fanout_events", st.FanoutEvents,
						"io_flushes", st.IOFlushes,
						"io_flush_bytes", st.IOFlushBytes,
						"cache_topics", st.CacheTopics,
						"cache_entries", st.CacheEntries,
						"cache_bytes", st.CacheBytes,
						"egress_queue_bytes", st.EgressQueueBytes,
						"slow_consumers", st.SlowConsumers,
						"pressure_drops", st.PressureDrops,
						"pressure_disconnects", st.PressureDisconnects,
						"gbps", fmt.Sprintf("%.3f", st.Gbps),
						"cpu", fmt.Sprintf("%.1f%%", st.CPUUtilized*100))
					if *dataDir != "" {
						logger.Info("seglog-stats", "id", s.ID(),
							"seglog_appends", st.SeglogAppends,
							"seglog_appended_bytes", st.SeglogAppendedBytes,
							"seglog_flushes", st.SeglogFlushes,
							"seglog_fsyncs", st.SeglogFsyncs,
							"seglog_segments", st.SeglogSegments,
							"seglog_disk_bytes", st.SeglogDiskBytes,
							"seglog_staged_bytes", st.SeglogStagedBytes,
							"seglog_failed", st.SeglogFailed)
					}
					if n := s.Node(); n != nil {
						cs := n.Stats()
						logger.Info("cluster-stats", "id", s.ID(),
							"forwarded", cs.Forwarded,
							"replicated", cs.Replicated,
							"takeovers", cs.Takeovers,
							"local_deliveries", cs.LocalDeliveries,
							"cluster_payloads_forwarded", cs.PayloadsForwarded,
							"cluster_payloads_suppressed", cs.PayloadsSuppressed)
					}
				}
			}
		}()
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", server.MetricsHandler(servers...))
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				logger.Error("metrics endpoint failed", "addr", *metricsAddr, "err", err)
			}
		}()
		logger.Info("serving metrics", "addr", *metricsAddr, "path", "/metrics")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down")
	for _, s := range servers {
		s.Close()
	}
	if recorder != nil {
		if err := recorder.Close(); err != nil {
			logger.Error("closing recorder", "err", err)
		}
	}
}
