// Command bench-gc regenerates the paper's Zing/C4 supplementary
// experiment as a pause ablation. The paper replaced a stop-the-world JVM
// collector with the pauseless C4 collector and saw the C10M scenario's
// mean latency fall from 61 to 13.2 ms and the 99th percentile from 585 to
// 24.4 ms. Go's collector is already concurrent, so this harness runs the
// experiment in the other direction: the same workload once with injected
// stop-the-world pauses in the engine's logic layer (the "standard
// collector" row) and once without (the "pauseless collector" row). The
// shape to verify: removing pauses collapses the latency tail by an order
// of magnitude and the mean by several times.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"migratorydata/internal/core"
	"migratorydata/internal/loadgen"
	"migratorydata/internal/metrics"
)

func main() {
	var (
		subs     = flag.Int("subscribers", 2000, "subscriber connections")
		topics   = flag.Int("topics", 20, "topics")
		rate     = flag.Duration("interval", 100*time.Millisecond, "publish interval per topic")
		warmup   = flag.Duration("warmup", 2*time.Second, "warm-up")
		measure  = flag.Duration("measure", 8*time.Second, "measurement window per row")
		pauseLen = flag.Duration("pause", 120*time.Millisecond, "mean injected pause length")
		pauseGap = flag.Duration("pause-interval", 800*time.Millisecond, "mean time between pauses")
	)
	flag.Parse()

	run := func(label string, injector *metrics.PauseInjector) {
		engine := core.New(core.Config{ServerID: "gc", TopicGroups: 100, Pause: injector})
		defer engine.Close()
		res, err := loadgen.RunScenario(engine, loadgen.Scenario{
			Subscribers:     *subs,
			Topics:          *topics,
			PublishInterval: *rate,
			Warmup:          *warmup,
			Measure:         *measure,
			Seed:            5,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s := res.Latency
		fmt.Printf("%-28s %8.2f %8.2f %8.0f %8.0f %8.0f\n",
			label, s.Mean, s.Median, s.P90, s.P95, s.P99)
	}

	fmt.Printf("GC pause ablation — %d subscribers, %d topics, 1 msg per %v per topic\n\n", *subs, *topics, *rate)
	fmt.Printf("%-28s %8s %8s %8s %8s %8s\n", "Collector", "Mean", "Median", "P90", "P95", "P99")

	inj := metrics.NewPauseInjector(*pauseGap, *pauseLen, 1)
	inj.Start()
	run("stop-the-world (injected)", inj)
	inj.Stop()
	total, count := inj.TotalPaused()
	run("pauseless (no injection)", nil)
	fmt.Printf("\ninjected %d pauses totalling %v during the first row\n", count, total.Round(time.Millisecond))
	fmt.Println("paper shape: removing pauses cut the mean ~4.6x (61 -> 13.2 ms) and P99 ~24x (585 -> 24.4 ms)")
}
