// Command bench-vertical regenerates Table 1 and Figure 3 of the paper:
// the vertical-scalability sweep. Ten runs step the subscriber count from
// 100K to 1M (paper scale; divided by -scale here), with one topic per 10K
// paper-subscribers and one 140-byte message per topic per second, printing
// the same columns as Table 1: latency median/mean/stddev/P90/P95/P99 (ms),
// CPU usage, outgoing traffic (Gbps) and topic count.
//
// The engine code path is identical to a network deployment; connections
// are in-process so the sweep is not limited by file descriptors. Absolute
// values reflect this machine, the shape is the paper's.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"migratorydata/internal/core"
	"migratorydata/internal/loadgen"
)

func main() {
	var (
		scale    = flag.Int("scale", 100, "divide the paper's subscriber counts by this factor")
		steps    = flag.Int("steps", 10, "number of 100K steps to run (10 = full Table 1)")
		warmup   = flag.Duration("warmup", 2*time.Second, "warm-up per run (paper: 3 min)")
		measure  = flag.Duration("measure", 5*time.Second, "measurement window per run (paper: 10 min)")
		interval = flag.Duration("interval", time.Second, "publish interval per topic; lower it to push the scaled engine toward saturation (reproduces the paper's top-end tail inflation)")
	)
	flag.Parse()

	fmt.Printf("Table 1 / Figure 3 — vertical scalability (paper counts / %d, %v measure per row)\n\n", *scale, *measure)
	fmt.Println(loadgen.RowHeader)
	for step := 1; step <= *steps; step++ {
		paperSubs := step * 100_000
		engine := core.New(core.Config{ServerID: "vertical", TopicGroups: 100})
		res, err := loadgen.RunScenario(engine, loadgen.Scenario{
			Subscribers:     paperSubs / *scale,
			Topics:          step * 10,
			PayloadSize:     140,
			PublishInterval: *interval,
			Warmup:          *warmup,
			Measure:         *measure,
			TopicPrefix:     "sport",
			Seed:            int64(step),
		})
		engine.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "step %d: %v\n", step, err)
			os.Exit(1)
		}
		// Print the row with the PAPER's subscriber label so rows align
		// with Table 1 (the actual count is paper/scale).
		res.Subscribers = paperSubs
		fmt.Println(res.Row())
		if res.Gaps != 0 {
			fmt.Fprintf(os.Stderr, "step %d: %d ordering gaps\n", step, res.Gaps)
			os.Exit(1)
		}
	}
	fmt.Println("\nFigure 3 plots the Mean and CPU columns of the table above against the subscriber count.")
}
