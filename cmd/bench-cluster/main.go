// Command bench-cluster regenerates Table 2 of the paper: horizontal
// scaling and fault tolerance. It deploys a 3-member cluster, loads it with
// 300K paper-clients (scaled by -scale) over 30 topics at one message per
// topic per second, measures latency, fail-stops one member, lets the
// clients reconnect to the survivors with missed-message recovery, and
// measures again — printing the Before/After rows of Table 2 plus the
// integrity report the paper gives in prose (client re-distribution, all
// messages recovered, no herd effect).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"migratorydata/internal/core"
	"migratorydata/internal/loadgen"
)

func main() {
	var (
		scale   = flag.Int("scale", 100, "divide the paper's client count by this factor")
		before  = flag.Duration("before", 5*time.Second, "measurement window before the failure (paper: 13 min run)")
		after   = flag.Duration("after", 5*time.Second, "measurement window after the failure (paper: 10 min)")
		settle  = flag.Duration("settle", 2*time.Second, "failover settle time between windows")
		warmup  = flag.Duration("warmup", 2*time.Second, "warm-up")
		members = flag.Int("members", 3, "cluster size")
	)
	flag.Parse()

	clients := 300_000 / *scale
	fmt.Printf("Table 2 — %d-member cluster, %d clients (paper: 300,000 / %d), fail-stop of one member\n\n",
		*members, clients, *scale)

	res, err := loadgen.RunFailover(loadgen.FailoverConfig{
		Members: *members,
		Scenario: loadgen.Scenario{
			Subscribers:     clients,
			Topics:          30,
			PayloadSize:     140,
			PublishInterval: time.Second,
			Warmup:          *warmup,
			Seed:            7,
		},
		BeforeMeasure:    *before,
		AfterMeasure:     *after,
		SettleAfterCrash: *settle,
		Engine:           core.Config{TopicGroups: 100},
		SessionTTL:       500 * time.Millisecond,
		OpTimeout:        2 * time.Second,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println(loadgen.Row2Header)
	fmt.Println(loadgen.Row2("Before", res.Before, res.CPUBefore))
	fmt.Println(loadgen.Row2("After", res.After, res.CPUAfter))
	fmt.Println()
	fmt.Printf("clients before: %v\n", res.ClientsBefore)
	fmt.Printf("clients after : %v (crashed member's clients re-distributed to survivors)\n", res.ClientsAfter)
	fmt.Printf("reconnections : %d, recovered-from-cache notifications: %d\n", res.Reconnects, res.Recovered)
	fmt.Printf("duplicates    : %d (re-deliveries dropped; allowed under at-least-once, §3)\n", res.Duplicates)
	fmt.Printf("ordering gaps : %d (0 = every message delivered, in order)\n", res.Gaps)
	if res.Gaps != 0 {
		fmt.Fprintln(os.Stderr, "FAILURE: messages lost or reordered during failover")
		os.Exit(1)
	}
	fmt.Println("\nAll messages published during the failover were recovered from the survivors' caches.")
}
