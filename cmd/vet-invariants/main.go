// Command vet-invariants is the repo's one-stop vet: it runs the standard
// `go vet` passes and then the invariant analyzers from internal/analysis
// (poolcheck, lockscope, hotpath) over the same packages. CI's lint job and
// local development both use
//
//	go run ./cmd/vet-invariants ./...
//
// The exit status is non-zero if either the standard passes or the
// invariant analyzers report anything. Findings are suppressed only by an
// inline `//vet:ignore <analyzer> -- <reason>` directive; a directive
// without a reason is itself a finding. See docs/STATIC_ANALYSIS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"migratorydata/internal/analysis"
)

func main() {
	stdVet := flag.Bool("vet", true, "also run the standard go vet passes")
	list := flag.Bool("list", false, "list the invariant analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vet-invariants [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs go vet plus the repo's invariant analyzers over the packages\n(default ./...).\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *stdVet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, pkg := range pkgs {
		for _, d := range analysis.RunAnalyzers(analyzers, pkg) {
			fmt.Println(d)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
