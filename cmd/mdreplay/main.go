// Command mdreplay replays a traffic capture (recorded with
// migratorydata -record) against a live server and reports divergence:
// whether the target delivered the same notifications, in the same
// per-topic order, as the recorded session.
//
//	mdreplay -file session.mdcap -target localhost:8800 -speed 10
//
// The target must speak raw framing (migratorydata -mode raw) and must be
// freshly started: topic sequence numbers are server state, so a target
// that has already seen publishes on the captured topics shifts every
// expected (epoch, seq) and the whole replay reports divergence. Exit
// status is 0 on a clean replay, 1 on divergence, 2 on operational errors
// (bad capture, unreachable target).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"migratorydata/internal/capture"
)

func main() {
	var (
		file   = flag.String("file", "", "capture file to replay (required)")
		target = flag.String("target", "", "server address to replay against, host:port (required)")
		speed  = flag.Float64("speed", 1, "time compression factor (10 = replay at 10x recorded speed)")
		settle = flag.Duration("settle", 3*time.Second, "how long to wait for in-flight deliveries after the last event")
	)
	flag.Parse()
	if *file == "" || *target == "" {
		flag.Usage()
		os.Exit(2)
	}

	rep, err := capture.ReplayFile(*file, capture.ReplayConfig{
		Attach: func(conn uint64) (net.Conn, error) {
			return net.Dial("tcp", *target)
		},
		Speed:  *speed,
		Settle: *settle,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdreplay:", err)
		os.Exit(2)
	}
	fmt.Println(rep)
	if !rep.Clean() {
		os.Exit(1)
	}
}
