// Command bench-c10m regenerates the paper's C10M supplementary
// experiment: 10 million paper-clients (scaled by -scale), each the sole
// subscriber of its own topic, each receiving one 512-byte message per
// minute — many more connections than the C1M runs but far less traffic
// per connection. The engine must sustain the connection count with modest
// CPU.
//
// Two modes:
//
//   - default: the scenario harness over in-process connections — the
//     traffic-shape experiment (latency, CPU, ordering).
//   - -net: real loopback TCP sockets through the kernel-poller read
//     path — the connection-scale experiment. Dials -conns idle
//     subscribers and reports what each costs: post-GC heap bytes per
//     connection (engine and dialer halves share the process) and
//     goroutines per connection, then proves liveness with one delivery.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"migratorydata/internal/cache"
	"migratorydata/internal/core"
	"migratorydata/internal/loadgen"
)

func main() {
	var (
		scale   = flag.Int("scale", 1000, "divide the paper's 10M clients by this factor")
		warmup  = flag.Duration("warmup", 2*time.Second, "warm-up")
		measure = flag.Duration("measure", 10*time.Second, "measurement window")
		netMode = flag.Bool("net", false, "dial real loopback TCP sockets instead of in-process pipes")
		conns   = flag.Int("conns", 100_000, "connection count for -net mode")
	)
	flag.Parse()

	if *netMode {
		if err := runNet(*conns); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	clients := 10_000_000 / *scale
	fmt.Printf("C10M — %d connections (paper: 10,000,000 / %d), 1 msg/min each, 512B payload\n\n", clients, *scale)

	engine := core.New(core.Config{ServerID: "c10m", TopicGroups: 100})
	defer engine.Close()
	res, err := loadgen.RunScenario(engine, loadgen.Scenario{
		Subscribers:     clients,
		Topics:          clients,
		PayloadSize:     512,
		PublishInterval: time.Minute,
		Warmup:          *warmup,
		Measure:         *measure,
		TopicPrefix:     "device",
		Seed:            42,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(loadgen.RowHeader)
	res.Subscribers = clients
	fmt.Println(res.Row())
	fmt.Printf("\nsustained connections: %d; delivered %.0f msgs/s; CPU %.2f%%\n",
		clients, res.MsgsPerSec, res.CPU*100)
	if res.Gaps != 0 {
		fmt.Fprintf(os.Stderr, "ordering gaps: %d\n", res.Gaps)
		os.Exit(1)
	}
}

// runNet is the connection-scale experiment: real sockets, idle fleet,
// per-connection memory and goroutine accounting from post-GC deltas.
func runNet(conns int) error {
	if lim, err := loadgen.RaiseFDLimit(uint64(2*conns) + 4096); err != nil {
		fmt.Fprintf(os.Stderr, "warning: RaiseFDLimit: %v (soft limit %d)\n", err, lim)
	}
	engine := core.New(core.Config{ServerID: "c10m-net", IoThreads: 4, Workers: 2, TopicGroups: 100})
	defer engine.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer l.Close()
	go engine.Serve(l, "raw")

	fmt.Printf("C10M -net — dialing %d idle loopback subscribers through the kernel-poller read path\n", conns)

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&m0)
	g0 := runtime.NumGoroutine()
	start := time.Now()

	fleet, err := loadgen.DialIdleFleet(loadgen.IdleFleetOptions{
		Addr: l.Addr().String(), Conns: conns, TopicPrefix: "device",
	})
	if err != nil {
		return err
	}
	defer fleet.Close()
	dialTime := time.Since(start)
	if got := engine.NumClients(); got != conns {
		return fmt.Errorf("engine sustains %d of %d connections", got, conns)
	}

	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&m1)
	g1 := runtime.NumGoroutine()

	// Liveness: one delivery through a fleet topic proves the engine still
	// works at this connection count.
	target := engine.Stats().Delivered + 1
	engine.Deliver(fmt.Sprintf("device-%d", conns/2), cache.Entry{Epoch: 1, Seq: 1, Payload: []byte("ping")})
	deadline := time.Now().Add(10 * time.Second)
	for engine.Stats().Delivered < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("liveness probe undelivered at %d connections", conns)
		}
		time.Sleep(time.Millisecond)
	}

	bytesPerConn := float64(int64(m1.HeapAlloc)-int64(m0.HeapAlloc)) / float64(conns)
	fmt.Printf("\nsustained connections:  %d (dialed+subscribed in %v)\n", conns, dialTime.Round(time.Millisecond))
	fmt.Printf("heap bytes per conn:    %.0f (post-GC delta, engine+dialer halves)\n", bytesPerConn)
	fmt.Printf("goroutines per conn:    %.5f (%d new goroutines total)\n", float64(g1-g0)/float64(conns), g1-g0)
	fmt.Printf("liveness probe:         delivered\n")
	return nil
}
