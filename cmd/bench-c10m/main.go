// Command bench-c10m regenerates the paper's C10M supplementary
// experiment: 10 million paper-clients (scaled by -scale), each the sole
// subscriber of its own topic, each receiving one 512-byte message per
// minute — many more connections than the C1M runs but far less traffic
// per connection. The engine must sustain the connection count with modest
// CPU.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"migratorydata/internal/core"
	"migratorydata/internal/loadgen"
)

func main() {
	var (
		scale   = flag.Int("scale", 1000, "divide the paper's 10M clients by this factor")
		warmup  = flag.Duration("warmup", 2*time.Second, "warm-up")
		measure = flag.Duration("measure", 10*time.Second, "measurement window")
	)
	flag.Parse()

	clients := 10_000_000 / *scale
	fmt.Printf("C10M — %d connections (paper: 10,000,000 / %d), 1 msg/min each, 512B payload\n\n", clients, *scale)

	engine := core.New(core.Config{ServerID: "c10m", TopicGroups: 100})
	defer engine.Close()
	res, err := loadgen.RunScenario(engine, loadgen.Scenario{
		Subscribers:     clients,
		Topics:          clients,
		PayloadSize:     512,
		PublishInterval: time.Minute,
		Warmup:          *warmup,
		Measure:         *measure,
		TopicPrefix:     "device",
		Seed:            42,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(loadgen.RowHeader)
	res.Subscribers = clients
	fmt.Println(res.Row())
	fmt.Printf("\nsustained connections: %d; delivered %.0f msgs/s; CPU %.2f%%\n",
		clients, res.MsgsPerSec, res.CPU*100)
	if res.Gaps != 0 {
		fmt.Fprintf(os.Stderr, "ordering gaps: %d\n", res.Gaps)
		os.Exit(1)
	}
}
