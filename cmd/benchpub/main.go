// Command benchpub is the paper's Benchpub tool (§6): it "generates
// messages of a configurable size and sends them to the MigratoryData
// cluster at a configurable rate" — one message per topic per interval,
// with the publisher timestamp embedded so Benchsub instances can compute
// end-to-end latency.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"migratorydata/internal/loadgen"
	"migratorydata/internal/transport"
)

func main() {
	var (
		serversFlag = flag.String("servers", "127.0.0.1:8800", "comma-separated server addresses")
		topics      = flag.Int("topics", 10, "number of topics (topic-0..topic-N-1)")
		prefix      = flag.String("topic-prefix", "topic", "topic name prefix")
		interval    = flag.Duration("interval", time.Second, "publication interval per topic")
		size        = flag.Int("size", 140, "payload size in bytes")
		duration    = flag.Duration("duration", 0, "how long to publish (0 = forever)")
		reliable    = flag.Bool("reliable", false, "wait for acks and republish on failure (at-least-once)")
	)
	flag.Parse()
	servers := strings.Split(*serversFlag, ",")

	topicNames := make([]string, *topics)
	for i := range topicNames {
		topicNames[i] = fmt.Sprintf("%s-%d", *prefix, i)
	}
	attach := func(i int) (net.Conn, error) {
		return transport.Dial("tcp", strings.TrimSpace(servers[i%len(servers)]))
	}

	fmt.Printf("benchpub: %d topics, %v interval, %dB payload, reliable=%v\n",
		*topics, *interval, *size, *reliable)
	bp, err := loadgen.StartBenchpub(loadgen.PubConfig{
		Topics:      topicNames,
		Interval:    *interval,
		PayloadSize: *size,
		Attach:      attach,
		Reliable:    *reliable,
		Seed:        time.Now().UnixNano(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer bp.Close()

	start := time.Now()
	tick := time.NewTicker(10 * time.Second)
	defer tick.Stop()
	for {
		<-tick.C
		elapsed := time.Since(start)
		fmt.Printf("t=%v sent=%d (%.0f msg/s) errors=%d\n",
			elapsed.Round(time.Second), bp.Sent(),
			float64(bp.Sent())/elapsed.Seconds(), bp.Errors())
		if *duration > 0 && elapsed >= *duration {
			return
		}
	}
}
