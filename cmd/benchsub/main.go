// Command benchsub is the paper's Benchsub tool (§6): it opens a
// configurable number of concurrent connections to a MigratoryData
// deployment, subscribes each to one of the configured topics, and reports
// end-to-end latency statistics (median, mean, standard deviation, 90th,
// 95th, 99th percentiles) computed from the publisher timestamps embedded
// in the notifications. Run it against cmd/migratorydata with cmd/benchpub
// generating the load.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"migratorydata/internal/loadgen"
	"migratorydata/internal/metrics"
	"migratorydata/internal/transport"
)

func main() {
	var (
		serversFlag = flag.String("servers", "127.0.0.1:8800", "comma-separated server addresses")
		conns       = flag.Int("connections", 1000, "concurrent subscriber connections")
		topics      = flag.Int("topics", 10, "number of topics (topic-0..topic-N-1)")
		prefix      = flag.String("topic-prefix", "topic", "topic name prefix")
		warmup      = flag.Duration("warmup", 10*time.Second, "warm-up before recording")
		measure     = flag.Duration("measure", 60*time.Second, "recording window")
		failover    = flag.Bool("failover", true, "reconnect to another server on failure")
	)
	flag.Parse()
	servers := strings.Split(*serversFlag, ",")

	hist := &metrics.Histogram{}
	topicNames := make([]string, *topics)
	for i := range topicNames {
		topicNames[i] = fmt.Sprintf("%s-%d", *prefix, i)
	}
	attach := func(i int) (net.Conn, error) {
		// Round-robin by connection index with failover skip: dial the
		// next server that accepts (mirrors the client-side list of §5.1).
		for try := 0; try < len(servers); try++ {
			addr := servers[(i+try)%len(servers)]
			c, err := transport.Dial("tcp", strings.TrimSpace(addr))
			if err == nil {
				return c, nil
			}
		}
		return nil, fmt.Errorf("no reachable server in %v", servers)
	}

	fmt.Printf("benchsub: %d connections, %d topics, servers %v\n", *conns, *topics, servers)
	bs, err := loadgen.StartBenchsub(loadgen.SubConfig{
		Connections: *conns,
		Topics:      topicNames,
		Attach:      attach,
		Histogram:   hist,
		Failover:    *failover,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer bs.Close()

	fmt.Printf("warming up for %v...\n", *warmup)
	time.Sleep(*warmup)
	bs.StartRecording()
	fmt.Printf("measuring for %v...\n", *measure)
	time.Sleep(*measure)
	bs.StopRecording()

	s := hist.Snapshot()
	fmt.Println(loadgen.RowHeader)
	fmt.Printf("%8d  %7.2f  %7.2f  %7.2f  %7.2f  %7.2f  %7.2f      --       --  %4d\n",
		*conns, s.Median, s.Mean, s.StdDev, s.P90, s.P95, s.P99, *topics)
	fmt.Printf("received=%d recovered=%d reconnects=%d gaps=%d errors=%d\n",
		bs.Received(), bs.Recovered(), bs.Reconnects(), bs.Gaps(), bs.Errors())
	if bs.Gaps() != 0 {
		fmt.Fprintln(os.Stderr, "WARNING: ordering/completeness violations observed")
		os.Exit(1)
	}
}
