// Command benchguard is the benchmark-trajectory regression gate: it diffs
// fresh BENCH_*.json artifacts (emitted by the bench-smoke CI job via
// metrics.AppendBenchJSON) against the checked-in baselines under
// docs/bench-baselines/ and exits non-zero on a >25% msgs/s regression, any
// real allocs/op increase, or any lock-acquisitions/op increase.
//
//	benchguard [-baselines docs/bench-baselines] [-min-ratio 0.75] BENCH_ingest.json BENCH_egress.json ...
//
// Each fresh file is matched to the baseline file with the same basename. A
// missing baseline file fails the gate (commit one per the refresh runbook
// in docs/BENCHMARKS.md); a fresh row with no baseline row is allowed (new
// benchmarks land before their baselines).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"migratorydata/internal/metrics"
)

func main() {
	var (
		baselines = flag.String("baselines", "docs/bench-baselines", "directory of baseline BENCH_*.json files")
		minRatio  = flag.Float64("min-ratio", 0.75, "lowest acceptable fresh/baseline msgs/s ratio")
		allocs    = flag.Float64("alloc-slack", 0.25, "allowed allocs/op increase over baseline")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no fresh BENCH_*.json files given")
		os.Exit(2)
	}
	th := metrics.BenchThresholds{MinMsgsRatio: *minRatio, AllocSlack: *allocs}

	failed := false
	for _, freshPath := range flag.Args() {
		basePath := filepath.Join(*baselines, filepath.Base(freshPath))
		base, err := metrics.ReadBenchJSON(basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: baseline %s: %v (run the refresh runbook in docs/BENCHMARKS.md)\n", basePath, err)
			failed = true
			continue
		}
		fresh, err := metrics.ReadBenchJSON(freshPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: fresh %s: %v\n", freshPath, err)
			failed = true
			continue
		}
		violations := metrics.CompareBenchRows(base, fresh, th)
		if len(violations) == 0 {
			fmt.Printf("benchguard: %s OK (%d baseline rows)\n", filepath.Base(freshPath), len(base))
			continue
		}
		failed = true
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "benchguard: %s: %s\n", filepath.Base(freshPath), v)
		}
	}
	if failed {
		os.Exit(1)
	}
}
