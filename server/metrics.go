package server

import (
	"fmt"
	"net/http"
	"reflect"

	"migratorydata/internal/core"
	"migratorydata/internal/metrics"
)

// statsMetric maps one core.Stats field to its Prometheus family. The
// table below covers every Stats field — server/metrics_test.go enforces
// that by reflection, so adding an engine counter without exporting it
// fails the build's tests, not a dashboard three weeks later.
type statsMetric struct {
	// Field is the core.Stats struct field name the value comes from.
	Field string
	// Name is the exposed family name (migratorydata_ prefix; counters end
	// in _total per Prometheus naming conventions).
	Name string
	Kind metrics.PromKind
	Help string
}

// statsMetrics is the full core.Stats → /metrics mapping, in exposition
// order. The stats-log keys printed by cmd/migratorydata use the same
// trailing vocabulary (published, pressure_drops, …), so a log line and a
// scrape are two views of one counter set — see docs/BENCHMARKS.md,
// "Prometheus export".
var statsMetrics = []statsMetric{
	{"Connections", "migratorydata_connections", metrics.PromGauge,
		"Client connections currently attached."},
	{"Connects", "migratorydata_connects_total", metrics.PromCounter,
		"Client connections accepted since start."},
	{"Published", "migratorydata_published_total", metrics.PromCounter,
		"Messages accepted from publishers."},
	{"Delivered", "migratorydata_delivered_total", metrics.PromCounter,
		"Notifications delivered to subscribers."},
	{"Retransmitted", "migratorydata_retransmitted_total", metrics.PromCounter,
		"Messages re-sent from the history cache on resume/replay."},
	{"DeliverRouted", "migratorydata_deliver_events_routed_total", metrics.PromCounter,
		"Deliver events enqueued to workers by the topic-aware router."},
	{"DeliverSkipped", "migratorydata_deliver_events_skipped_total", metrics.PromCounter,
		"Worker pushes avoided because the worker had no subscriber for the topic."},
	{"FanoutEvents", "migratorydata_fanout_events_total", metrics.PromCounter,
		"Grouped write events pushed from workers to I/O threads."},
	{"IOFlushes", "migratorydata_io_flushes_total", metrics.PromCounter,
		"Transport write operations."},
	{"IOFlushBytes", "migratorydata_io_flush_bytes_total", metrics.PromCounter,
		"Bytes carried by transport writes."},
	{"CacheTopics", "migratorydata_cache_topics", metrics.PromGauge,
		"Topics with history cached."},
	{"CacheEntries", "migratorydata_cache_entries", metrics.PromGauge,
		"Live entries in the history cache."},
	{"CacheBytes", "migratorydata_cache_bytes", metrics.PromGauge,
		"Measured history-cache footprint in bytes."},
	{"EgressQueueBytes", "migratorydata_egress_queue_bytes", metrics.PromGauge,
		"Bytes staged but unwritten toward clients."},
	{"SlowConsumers", "migratorydata_slow_consumers", metrics.PromGauge,
		"Clients currently above the healthy pressure tier."},
	{"SlowConsumerBytes", "migratorydata_slow_consumer_bytes", metrics.PromGauge,
		"Staged bytes pinned by slow consumers."},
	{"PressureDrops", "migratorydata_pressure_drops_total", metrics.PromCounter,
		"Frames conflated away or evicted by the overload policy."},
	{"PressureDisconnects", "migratorydata_pressure_disconnects_total", metrics.PromCounter,
		"Fenced disconnects of critically slow consumers."},
	{"BytesOut", "migratorydata_bytes_out_total", metrics.PromCounter,
		"Payload bytes written to clients."},
	{"Gbps", "migratorydata_egress_gbps", metrics.PromGauge,
		"Measured egress throughput in gigabits per second."},
	{"CPUUtilized", "migratorydata_cpu_utilization", metrics.PromGauge,
		"Process CPU utilization fraction (0-1) over the sampling window."},
	{"SeglogAppends", "migratorydata_seglog_appends_total", metrics.PromCounter,
		"Sequenced entries staged toward the durable segment log."},
	{"SeglogAppendedBytes", "migratorydata_seglog_appended_bytes_total", metrics.PromCounter,
		"Record bytes staged toward the durable segment log."},
	{"SeglogDropped", "migratorydata_seglog_dropped_total", metrics.PromCounter,
		"Entries discarded after a terminal segment-log sink failure."},
	{"SeglogFlushes", "migratorydata_seglog_flushes_total", metrics.PromCounter,
		"Writer-side flushes of staged segment-log bytes to disk."},
	{"SeglogFsyncs", "migratorydata_seglog_fsyncs_total", metrics.PromCounter,
		"fsync calls issued by the segment-log writer."},
	{"SeglogSegments", "migratorydata_seglog_segments", metrics.PromGauge,
		"Segment files created since start."},
	{"SeglogDiskBytes", "migratorydata_seglog_disk_bytes", metrics.PromGauge,
		"Bytes written to segment files since start."},
	{"SeglogStagedBytes", "migratorydata_seglog_staged_bytes", metrics.PromGauge,
		"Segment-log bytes staged in memory but not yet written."},
	{"SeglogRecoveredEntries", "migratorydata_seglog_recovered_entries", metrics.PromGauge,
		"History entries replayed from the segment log at boot."},
	{"SeglogTruncations", "migratorydata_seglog_truncations", metrics.PromGauge,
		"Torn or corrupt records truncated during boot recovery."},
	{"SeglogFailed", "migratorydata_seglog_failed", metrics.PromGauge,
		"1 once the segment log hit a terminal write/sync error (history on disk stays replayable)."},
}

// statsValue extracts the named field from a Stats snapshot as a float64.
func statsValue(st core.Stats, field string) (float64, error) {
	v := reflect.ValueOf(st).FieldByName(field)
	if !v.IsValid() {
		return 0, fmt.Errorf("server: no core.Stats field %q", field)
	}
	switch v.Kind() {
	case reflect.Int, reflect.Int64:
		return float64(v.Int()), nil
	case reflect.Float64:
		return v.Float(), nil
	default:
		return 0, fmt.Errorf("server: core.Stats field %q has unsupported kind %s", field, v.Kind())
	}
}

// promFamilies renders one Stats snapshot per server into the full family
// list. With more than one server (an in-process cluster) each family
// carries one sample per member, labeled by server id.
func promFamilies(servers []*Server) ([]metrics.PromFamily, error) {
	snaps := make([]core.Stats, len(servers))
	for i, s := range servers {
		snaps[i] = s.Stats()
	}
	families := make([]metrics.PromFamily, 0, len(statsMetrics))
	for _, m := range statsMetrics {
		fam := metrics.PromFamily{Name: m.Name, Help: m.Help, Kind: m.Kind}
		for i, s := range servers {
			val, err := statsValue(snaps[i], m.Field)
			if err != nil {
				return nil, err
			}
			sample := metrics.PromSample{Value: val}
			if len(servers) > 1 {
				sample.Labels = map[string]string{"server": s.ID()}
			}
			fam.Samples = append(fam.Samples, sample)
		}
		families = append(families, fam)
	}
	return families, nil
}

// MetricsHandler returns an http.Handler serving the servers' engine
// counters in Prometheus text exposition format — mount it at /metrics.
// Each request takes fresh Stats snapshots; nothing is cached and the
// engine hot paths are untouched (Stats sums cold-path ledgers).
func MetricsHandler(servers ...*Server) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		families, err := promFamilies(servers)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := metrics.WritePromText(w, families); err != nil {
			// Headers are gone; all we can do is cut the response short so
			// the scraper sees a truncated exposition, not a silent half.
			return
		}
	})
}
