package server_test

import (
	"net"
	"testing"
	"time"

	"migratorydata/internal/loadgen"
	"migratorydata/internal/metrics"
	"migratorydata/internal/transport"
	"migratorydata/server"
)

// TestTCPClusterWithLoadgen runs the real deployment shape end to end: a
// 3-member cluster listening on TCP loopback in raw mode, with the
// Benchpub/Benchsub tools (as cmd/benchpub and cmd/benchsub use them)
// driving load over actual sockets.
func TestTCPClusterWithLoadgen(t *testing.T) {
	clu, err := server.NewCluster(server.ClusterSpec{
		Members: []server.Config{
			{ID: "T-A", ListenNetwork: "tcp", ListenAddr: "127.0.0.1:0", Mode: "raw", IoThreads: 1, Workers: 1, TopicGroups: 16},
			{ID: "T-B", ListenNetwork: "tcp", ListenAddr: "127.0.0.1:0", Mode: "raw", IoThreads: 1, Workers: 1, TopicGroups: 16},
			{ID: "T-C", ListenNetwork: "tcp", ListenAddr: "127.0.0.1:0", Mode: "raw", IoThreads: 1, Workers: 1, TopicGroups: 16},
		},
		SessionTTL: 300 * time.Millisecond,
		TickEvery:  5 * time.Millisecond,
	})
	if err != nil {
		t.Skipf("tcp unavailable: %v", err)
	}
	defer clu.Close()
	if err := clu.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, len(clu.Servers))
	for i, s := range clu.Servers {
		addrs[i] = s.Addr()
	}

	attach := func(i int) (net.Conn, error) {
		return transport.Dial("tcp", addrs[i%len(addrs)])
	}
	hist := &metrics.Histogram{}
	topics := []string{"tcp-a", "tcp-b", "tcp-c"}
	bs, err := loadgen.StartBenchsub(loadgen.SubConfig{
		Connections: 30,
		Topics:      topics,
		Attach:      attach,
		Histogram:   hist,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	bs.StartRecording()

	bp, err := loadgen.StartBenchpub(loadgen.PubConfig{
		Topics:      topics,
		Interval:    50 * time.Millisecond,
		PayloadSize: 140,
		Attach:      attach,
		Reliable:    true,
		Seed:        31,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bp.Close()

	deadline := time.Now().Add(15 * time.Second)
	for bs.Received() < 200 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if bs.Received() < 200 {
		t.Fatalf("received only %d notifications over TCP", bs.Received())
	}
	if bs.Gaps() != 0 {
		t.Fatalf("gaps over TCP = %d", bs.Gaps())
	}
	if hist.Count() == 0 {
		t.Fatal("no latency samples over TCP")
	}
	if s := hist.Snapshot(); s.Mean > 5000 {
		t.Fatalf("implausible TCP latency: %+v", s)
	}
}
