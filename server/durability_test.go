package server_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"migratorydata/client"
	"migratorydata/server"
)

// TestServerDurableRestart is the public-API durability round trip: a
// server with DataDir restarted over the same directory serves the
// pre-restart history to a resuming subscriber.
func TestServerDurableRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{
		ID: "durable", ListenNetwork: "inproc", ListenAddr: addr("du"),
		IoThreads: 1, Workers: 1, DataDir: dir,
	}
	srv, err := server.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	pub, err := client.New(client.Config{Servers: []string{cfg.ListenAddr}, Network: "inproc", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := pub.Publish(ctx, "ticker", []byte("tick")); err != nil {
			t.Fatal(err)
		}
	}
	pub.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.ListenAddr = addr("du")
	srv2, err := server.Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer srv2.Close()
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	if got := srv2.Stats().SeglogRecoveredEntries; got != 10 {
		t.Fatalf("SeglogRecoveredEntries = %d, want 10", got)
	}

	sub, err := client.New(client.Config{Servers: []string{cfg.ListenAddr}, Network: "inproc", Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// Resume from (1, 4): the recovered history must replay 5..10.
	if err := sub.SubscribeFrom("ticker", 1, 4); err != nil {
		t.Fatal(err)
	}
	for want := uint64(5); want <= 10; want++ {
		select {
		case n := <-sub.Notifications():
			if n.Epoch != 1 || n.Seq != want || !n.Retransmitted {
				t.Fatalf("replayed (%d, %d, retrans=%v), want (1, %d, true)",
					n.Epoch, n.Seq, n.Retransmitted, want)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("no replay for seq %d", want)
		}
	}
}

// TestClusterRejectsDataDir pins the single-node-only contract: cluster
// durability is replication, so a member with a local segment log is a
// configuration error, not a silent foot-gun.
func TestClusterRejectsDataDir(t *testing.T) {
	_, err := server.NewCluster(server.ClusterSpec{Members: []server.Config{
		{ID: "a", IoThreads: 1, Workers: 1},
		{ID: "b", IoThreads: 1, Workers: 1, DataDir: t.TempDir()},
	}})
	if err == nil {
		t.Fatal("cluster accepted a member with DataDir")
	}
	if !strings.Contains(err.Error(), "b") || !strings.Contains(err.Error(), "DataDir") {
		t.Fatalf("rejection should name the member and the field: %v", err)
	}
}
