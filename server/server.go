// Package server is the public MigratoryData server API. A Server wraps the
// single-node engine (paper §4); a Cluster wires several Servers into the
// replicated deployment of §5, with coordinator-based total ordering,
// replication, and failure recovery.
package server

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"migratorydata/internal/capture"
	"migratorydata/internal/cluster"
	"migratorydata/internal/consensus"
	"migratorydata/internal/core"
	"migratorydata/internal/metrics"
	"migratorydata/internal/seglog"
	"migratorydata/internal/transport"
)

// Server errors.
var (
	ErrAlreadyStarted = errors.New("server: already started")
)

// Config parametrizes a Server.
type Config struct {
	// ID names this server (CONNACKs, cluster membership).
	ID string
	// ListenNetwork ("tcp" or "inproc") and ListenAddr locate the client
	// listener. Empty ListenAddr means no listener (Attach-only, used by
	// in-process harnesses).
	ListenNetwork string
	ListenAddr    string
	// Mode is the client framing: "ws" (default) or "raw".
	Mode string
	// IoThreads / Workers / TopicGroups / CacheCapacity tune the engine
	// (§4); zero selects the defaults.
	IoThreads     int
	Workers       int
	TopicGroups   int
	CacheCapacity int
	// BatchMaxBytes / BatchMaxDelay enable output batching (§4).
	BatchMaxBytes int
	BatchMaxDelay time.Duration
	// ConflationInterval enables per-topic conflation (§4).
	ConflationInterval time.Duration
	// EgressBudgetBytes bounds each client's staged-but-unwritten egress —
	// the slow-consumer overload protection (docs/ARCHITECTURE.md, "The
	// overload path"). 0 selects the engine default (1 MiB); negative
	// disables protection.
	EgressBudgetBytes int
	// Classify assigns topics a delivery class for the overload policy
	// (nil: every topic reliable — never dropped under pressure).
	Classify core.ClassifyFunc
	// DataDir, when non-empty, enables durable history: the engine keeps a
	// crash-safe per-group segment log under this directory and replays it
	// at startup, so resume-with-position survives a restart (see
	// docs/ARCHITECTURE.md, "The durability path"). Single-node only —
	// cluster members get durability through replication (§5.2.2) and
	// NewCluster rejects members that set it.
	DataDir string
	// Fsync is the segment-log durability policy (zero value: periodic
	// sync every 100ms; see seglog.ParsePolicy for the flag syntax).
	Fsync seglog.Policy
	// SegmentMaxBytes / SegmentMaxAge bound one segment file (zero:
	// 8 MiB / 10 minutes).
	SegmentMaxBytes int64
	SegmentMaxAge   time.Duration
	// Recorder optionally taps the engine's ingest/egress spine for traffic
	// capture (see internal/capture). Nil (the default) costs the hot path
	// one nil-check branch.
	Recorder *capture.Recorder
	// Pause optionally injects stop-the-world pauses (GC ablation).
	Pause *metrics.PauseInjector
	// Logger receives debug events.
	Logger *slog.Logger
}

// Server is one MigratoryData server.
type Server struct {
	cfg    Config
	engine *core.Engine
	node   *cluster.Node // nil in single-node mode

	mu       sync.Mutex
	listener net.Listener
	started  bool
	closed   bool
}

// engineConfig converts the public config to the engine's.
func (cfg Config) engineConfig() core.Config {
	return core.Config{
		ServerID:           cfg.ID,
		IoThreads:          cfg.IoThreads,
		Workers:            cfg.Workers,
		TopicGroups:        cfg.TopicGroups,
		CacheCapacity:      cfg.CacheCapacity,
		BatchMaxBytes:      cfg.BatchMaxBytes,
		BatchMaxDelay:      cfg.BatchMaxDelay,
		ConflationInterval: cfg.ConflationInterval,
		EgressBudgetBytes:  cfg.EgressBudgetBytes,
		Classify:           cfg.Classify,
		DataDir:            cfg.DataDir,
		Fsync:              cfg.Fsync,
		SegmentMaxBytes:    cfg.SegmentMaxBytes,
		SegmentMaxAge:      cfg.SegmentMaxAge,
		Recorder:           cfg.Recorder,
		Pause:              cfg.Pause,
		Logger:             cfg.Logger,
	}
}

// New constructs a single-node server (the paper's vertically-scalable
// engine with the local sequencer). Call Start to begin accepting clients.
// New panics if the durable log under DataDir cannot be opened; callers
// that set DataDir should use Open and handle the error.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open is New with the durable-history error surfaced: a corrupt or
// mismatched data dir refuses to open (naming the offending file) instead
// of serving history of unknown provenance.
func Open(cfg Config) (*Server, error) {
	if cfg.ID == "" {
		cfg.ID = "server-1"
	}
	if cfg.Mode == "" {
		cfg.Mode = "ws"
	}
	e, err := core.Open(cfg.engineConfig())
	if err != nil {
		return nil, fmt.Errorf("server %s: %w", cfg.ID, err)
	}
	return &Server{cfg: cfg, engine: e}, nil
}

// newClusterMember constructs a server whose engine is owned by a cluster
// node (used by NewCluster).
func newClusterMember(cfg Config, node *cluster.Node) *Server {
	if cfg.Mode == "" {
		cfg.Mode = "ws"
	}
	return &Server{cfg: cfg, engine: node.Engine(), node: node}
}

// Start opens the configured listener (if any) and begins serving. It
// returns immediately; serving continues until Close.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return ErrAlreadyStarted
	}
	s.started = true
	if s.cfg.ListenAddr == "" {
		return nil
	}
	network := s.cfg.ListenNetwork
	if network == "" {
		network = "tcp"
	}
	l, err := transport.Listen(network, s.cfg.ListenAddr)
	if err != nil {
		return fmt.Errorf("server %s: %w", s.cfg.ID, err)
	}
	s.listener = l
	go s.engine.Serve(l, s.cfg.Mode)
	return nil
}

// Addr reports the listener address ("" when Attach-only).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// ID reports the server name.
func (s *Server) ID() string { return s.cfg.ID }

// Engine exposes the underlying engine for in-process attachment and
// statistics.
func (s *Server) Engine() *core.Engine { return s.engine }

// Node exposes the cluster node (nil in single-node mode).
func (s *Server) Node() *cluster.Node { return s.node }

// Stats returns the engine counters.
func (s *Server) Stats() core.Stats { return s.engine.Stats() }

// Close shuts the server down. For cluster members this is a crash-stop:
// the member's coordination session expires and survivors take over its
// topic groups.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	if s.node != nil {
		s.node.Stop() // stops the engine too
		return nil
	}
	return s.engine.Close()
}

// ClusterSpec describes an in-process cluster deployment.
type ClusterSpec struct {
	// Members configures each server; IDs must be unique. ListenAddr may
	// be empty for Attach-only members.
	Members []Config
	// SessionTTL / OpTimeout / TickEvery / PartitionGrace tune the
	// coordination service; zeros select production-ish defaults.
	SessionTTL     time.Duration
	OpTimeout      time.Duration
	TickEvery      time.Duration
	PartitionGrace time.Duration
	// AckCopies is the replication degree before a publisher is
	// acknowledged. Default 2 (the paper's single-fault model); higher
	// values tolerate more concurrent faults (§5.2's extension).
	AckCopies int
	// Seed fixes randomized behaviour.
	Seed int64
}

// Cluster is an in-process MigratoryData cluster: n Servers joined by a
// replication bus and a coordination mesh. The paper deploys one process
// per machine; this form runs them in one process for harnesses, examples,
// and tests, with identical protocol behaviour.
type Cluster struct {
	Bus     *cluster.Bus
	Mesh    *consensus.Mesh
	Servers []*Server
}

// NewCluster constructs and starts all members.
func NewCluster(spec ClusterSpec) (*Cluster, error) {
	if len(spec.Members) == 0 {
		return nil, errors.New("server: cluster needs at least one member")
	}
	bus := cluster.NewBus()
	mesh := consensus.NewMesh()
	ids := make([]string, len(spec.Members))
	for i, m := range spec.Members {
		if m.ID == "" {
			return nil, fmt.Errorf("server: member %d has no ID", i)
		}
		if m.DataDir != "" {
			// Cluster durability is replication (§5.2.2): a member's local
			// segment log would replay history the cluster epoch already
			// superseded. Refuse loudly rather than recover wrongly.
			return nil, fmt.Errorf("server: member %s sets DataDir %q — durable history is single-node only; cluster durability is replication", m.ID, m.DataDir)
		}
		ids[i] = m.ID
	}
	c := &Cluster{Bus: bus, Mesh: mesh}
	for i, m := range spec.Members {
		node := cluster.NewNode(cluster.Config{
			ID:             m.ID,
			Peers:          ids,
			Engine:         m.engineConfig(),
			SessionTTL:     spec.SessionTTL,
			OpTimeout:      spec.OpTimeout,
			TickEvery:      spec.TickEvery,
			PartitionGrace: spec.PartitionGrace,
			AckCopies:      spec.AckCopies,
			Seed:           spec.Seed + int64(i+1),
			Logger:         m.Logger,
		}, bus, mesh)
		srv := newClusterMember(m, node)
		if err := srv.Start(); err != nil {
			srv.Close()
			for _, prev := range c.Servers {
				prev.Close()
			}
			return nil, err
		}
		c.Servers = append(c.Servers, srv)
	}
	return c, nil
}

// WaitReady blocks until the coordination service has a leader (the cluster
// can sequence publications) or the timeout elapses.
func (c *Cluster) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, s := range c.Servers {
			if s.node != nil && s.node.Coord().IsLeader() {
				return nil
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return errors.New("server: cluster not ready within timeout")
}

// Crash fail-stops member i (Table 2's fault injection): its clients are
// disconnected, its coordination session expires, and survivors take over.
func (c *Cluster) Crash(i int) {
	s := c.Servers[i]
	c.Mesh.Unregister(s.ID())
	s.Close()
}

// Close stops every member.
func (c *Cluster) Close() {
	for _, s := range c.Servers {
		s.Close()
	}
}
