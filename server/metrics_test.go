package server

import (
	"io"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"migratorydata/internal/core"
	"migratorydata/internal/metrics"
	"migratorydata/internal/protocol"
)

// TestStatsMetricsCoverEveryStatsField is the reflection coverage test:
// every core.Stats field must appear exactly once in the statsMetrics
// mapping, and every mapping entry must name a real field. An engine
// counter added without a /metrics export fails here.
func TestStatsMetricsCoverEveryStatsField(t *testing.T) {
	st := reflect.TypeOf(core.Stats{})
	mapped := map[string]int{}
	for _, m := range statsMetrics {
		mapped[m.Field]++
	}
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		switch mapped[name] {
		case 0:
			t.Errorf("core.Stats.%s has no /metrics mapping; add it to statsMetrics", name)
		case 1:
		default:
			t.Errorf("core.Stats.%s is mapped %d times", name, mapped[name])
		}
		delete(mapped, name)
	}
	for field := range mapped {
		t.Errorf("statsMetrics maps %q, which is not a core.Stats field", field)
	}
	// Every value must extract cleanly (no unsupported field kinds).
	for _, m := range statsMetrics {
		if _, err := statsValue(core.Stats{}, m.Field); err != nil {
			t.Errorf("statsValue(%s): %v", m.Field, err)
		}
	}
}

// TestStatsMetricsNamingConventions pins the exposed vocabulary: the
// migratorydata_ prefix, _total suffixes on counters and only counters,
// valid Prometheus names, and unique names.
func TestStatsMetricsNamingConventions(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range statsMetrics {
		if !metrics.ValidPromName(m.Name) {
			t.Errorf("%s: invalid prometheus name", m.Name)
		}
		if !strings.HasPrefix(m.Name, "migratorydata_") {
			t.Errorf("%s: missing migratorydata_ prefix", m.Name)
		}
		if hasTotal := strings.HasSuffix(m.Name, "_total"); hasTotal != (m.Kind == metrics.PromCounter) {
			t.Errorf("%s: kind %s and _total suffix disagree", m.Name, m.Kind)
		}
		if m.Help == "" {
			t.Errorf("%s: no help text", m.Name)
		}
		if seen[m.Name] {
			t.Errorf("%s: duplicate family name", m.Name)
		}
		seen[m.Name] = true
	}
}

// promLine matches a valid sample line: name, optional labels, and a
// numeric value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)

// TestMetricsHandlerExposition scrapes a live server and checks the
// response is format-compliant: correct content type, HELP+TYPE preceding
// every family, every sample line well-formed, every mapped family
// present.
func TestMetricsHandlerExposition(t *testing.T) {
	srv := New(Config{ID: "prom-1"})
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()

	h := MetricsHandler(srv)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /metrics: status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q is not the text exposition type", ct)
	}
	body, _ := io.ReadAll(rr.Body)
	out := string(body)

	typed := map[string]bool{}
	var lastHelp string
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			lastHelp = strings.Fields(line)[2]
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "counter" && f[3] != "gauge") {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			if f[2] != lastHelp {
				t.Errorf("TYPE %s not preceded by its HELP line", f[2])
			}
			if typed[f[2]] {
				t.Errorf("family %s declared twice", f[2])
			}
			typed[f[2]] = true
		case line == "":
			t.Error("blank line in exposition")
		default:
			if !promLine.MatchString(line) {
				t.Errorf("malformed sample line: %q", line)
			}
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			if !typed[name] {
				t.Errorf("sample %q precedes its TYPE declaration", name)
			}
		}
	}
	for _, m := range statsMetrics {
		if !typed[m.Name] {
			t.Errorf("family %s missing from /metrics", m.Name)
		}
		if !strings.Contains(out, "\n"+m.Name+" ") && !strings.HasPrefix(out, m.Name+" ") {
			t.Errorf("no sample for %s in single-server exposition", m.Name)
		}
	}
}

// TestMetricsHandlerMultiServerLabels: with several servers each family
// carries one labeled sample per member.
func TestMetricsHandlerMultiServerLabels(t *testing.T) {
	a := New(Config{ID: "prom-a"})
	b := New(Config{ID: "prom-b"})
	defer a.Close()
	defer b.Close()

	rr := httptest.NewRecorder()
	MetricsHandler(a, b).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	out := rr.Body.String()
	for _, want := range []string{
		`migratorydata_connections{server="prom-a"} `,
		`migratorydata_connections{server="prom-b"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("multi-server exposition missing %q", want)
		}
	}
}

// TestMetricsHandlerReflectsTraffic: counters flowing through the engine
// show up in a scrape.
func TestMetricsHandlerReflectsTraffic(t *testing.T) {
	srv := New(Config{ID: "prom-traffic"})
	defer srv.Close()
	srv.Engine().Publish(&protocol.Message{
		Kind: protocol.KindPublish, Topic: "t1", ID: "id-1", Payload: []byte("x"),
	})

	rr := httptest.NewRecorder()
	MetricsHandler(srv).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rr.Body.String(), "migratorydata_published_total 1") {
		t.Errorf("scrape does not reflect the published message:\n%s", rr.Body.String())
	}
}
