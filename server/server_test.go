package server_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"migratorydata/client"
	"migratorydata/server"
)

var addrSeq int

func addr(prefix string) string {
	addrSeq++
	return fmt.Sprintf("%s-%d", prefix, addrSeq)
}

func TestSingleServerLifecycle(t *testing.T) {
	srv := server.New(server.Config{
		ID: "lifecycle", ListenNetwork: "inproc", ListenAddr: addr("sv"),
		IoThreads: 1, Workers: 1,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err == nil {
		t.Fatal("second Start should fail")
	}
	if srv.Addr() == "" {
		t.Fatal("no listener address")
	}
	if srv.ID() != "lifecycle" {
		t.Fatalf("ID = %q", srv.ID())
	}
	if srv.Node() != nil {
		t.Fatal("single-node server reports a cluster node")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
}

func TestServerAttachOnly(t *testing.T) {
	srv := server.New(server.Config{ID: "attach-only", IoThreads: 1, Workers: 1})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() != "" {
		t.Fatal("attach-only server should have no address")
	}
	if srv.Engine() == nil {
		t.Fatal("no engine")
	}
}

func TestServerEndToEnd(t *testing.T) {
	a := addr("e2e")
	srv := server.New(server.Config{
		ID: "e2e", ListenNetwork: "inproc", ListenAddr: a,
		IoThreads: 2, Workers: 2,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sub, err := client.New(client.Config{Servers: []string{a}, Network: "inproc", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	sub.Subscribe("news")
	time.Sleep(50 * time.Millisecond)

	pub, err := client.New(client.Config{Servers: []string{a}, Network: "inproc", Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pub.Publish(ctx, "news", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-sub.Notifications():
		if string(n.Payload) != "hello" {
			t.Fatalf("payload = %q", n.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no notification")
	}
	if srv.Stats().Published != 1 {
		t.Fatalf("stats = %+v", srv.Stats())
	}
}

func TestClusterSpecValidation(t *testing.T) {
	if _, err := server.NewCluster(server.ClusterSpec{}); err == nil {
		t.Fatal("empty cluster spec must fail")
	}
	if _, err := server.NewCluster(server.ClusterSpec{
		Members: []server.Config{{}},
	}); err == nil {
		t.Fatal("member without ID must fail")
	}
}

func TestClusterEndToEnd(t *testing.T) {
	a1, a2, a3 := addr("cl"), addr("cl"), addr("cl")
	clu, err := server.NewCluster(server.ClusterSpec{
		Members: []server.Config{
			{ID: "A", ListenNetwork: "inproc", ListenAddr: a1, IoThreads: 1, Workers: 1, TopicGroups: 8},
			{ID: "B", ListenNetwork: "inproc", ListenAddr: a2, IoThreads: 1, Workers: 1, TopicGroups: 8},
			{ID: "C", ListenNetwork: "inproc", ListenAddr: a3, IoThreads: 1, Workers: 1, TopicGroups: 8},
		},
		SessionTTL: 300 * time.Millisecond,
		TickEvery:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()
	if err := clu.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	sub, err := client.New(client.Config{Servers: []string{a3}, Network: "inproc", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	sub.Subscribe("cluster-topic")
	time.Sleep(100 * time.Millisecond)

	pub, err := client.New(client.Config{Servers: []string{a1}, Network: "inproc", Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := pub.Publish(ctx, "cluster-topic", []byte("x-node")); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-sub.Notifications():
		if string(n.Payload) != "x-node" {
			t.Fatalf("payload = %q", n.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cross-node notification never arrived")
	}
}
