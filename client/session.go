package client

import (
	"fmt"
	"net"
	"time"

	"migratorydata/internal/hashing"
	"migratorydata/internal/protocol"
	"migratorydata/internal/websocket"
)

// sessionLoop is the connection manager: connect, run, and on failure
// blacklist + back off + reconnect with resume (§5.2.3).
func (c *Client) sessionLoop() {
	defer c.wg.Done()
	attempt := 0
	for !c.closed.Load() {
		server, err := c.pickServer()
		if err != nil {
			return
		}
		if err := c.runSession(server); err != nil && !c.closed.Load() {
			// Add the failed server to the temporary blacklist and retry
			// elsewhere after a truncated exponential back-off.
			c.blacklist.Add(server)
			attempt++
			select {
			case <-time.After(c.policy.Wait(attempt)):
			case <-c.closeCh:
				return
			}
			continue
		}
		if c.closed.Load() {
			return
		}
		attempt = 0
	}
}

// pickServer chooses a non-blacklisted server, weighted if configured.
func (c *Client) pickServer() (string, error) {
	candidates := c.blacklist.Filter(c.cfg.Servers)
	if len(candidates) == 0 {
		return "", ErrNoServers
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	if c.cfg.Weights == nil || len(c.cfg.Weights) != len(c.cfg.Servers) {
		return candidates[c.rng.Intn(len(candidates))], nil
	}
	// Map candidate weights back from the full server list.
	weights := make([]float64, len(candidates))
	for i, srv := range candidates {
		for j, full := range c.cfg.Servers {
			if full == srv {
				weights[i] = c.cfg.Weights[j]
			}
		}
	}
	idx := hashing.WeightedChoice(c.rng, weights)
	if idx < 0 {
		return candidates[0], nil
	}
	return candidates[idx], nil
}

// runSession establishes one connection and pumps it until failure or
// close. A nil return means the client is closing.
func (c *Client) runSession(server string) error {
	conn, err := c.cfg.Dial(c.cfg.Network, server)
	if err != nil {
		return err
	}
	var f framed
	switch c.cfg.Mode {
	case "raw":
		f = newRawClientFramed(conn)
	default:
		ws, err := websocket.ClientHandshake(conn, server, "/")
		if err != nil {
			conn.Close()
			return err
		}
		f = &wsClientFramed{ws: ws}
	}

	// CONNECT / CONNACK, then re-subscribe with resume positions.
	if err := f.write(protocol.Encode(&protocol.Message{
		Kind: protocol.KindConnect, ClientID: c.cfg.ClientID,
	})); err != nil {
		f.close()
		return err
	}

	c.mu.Lock()
	c.conn = conn
	c.framed = f
	c.server = server
	c.connGen++
	var resume []protocol.TopicPosition
	for _, tp := range c.positions {
		resume = append(resume, tp)
	}
	c.mu.Unlock()

	first := c.connects.connects.Add(1) == 1
	if !first {
		c.connects.reconnects.Add(1)
	}

	if len(resume) > 0 {
		if err := f.write(protocol.Encode(&protocol.Message{
			Kind: protocol.KindSubscribe, Topics: resume,
		})); err != nil {
			c.detach(f)
			return err
		}
	}

	if c.cfg.KeepAlive > 0 {
		stopPing := make(chan struct{})
		defer close(stopPing)
		go c.pingLoop(f, stopPing)
	}

	err = c.readPump(f)
	c.detach(f)
	if c.closed.Load() {
		return nil
	}
	return err
}

// pingLoop sends periodic keepalive pings; a write failure closes the
// transport, which fails the read pump and triggers reconnection.
func (c *Client) pingLoop(f framed, stop <-chan struct{}) {
	t := time.NewTicker(c.cfg.KeepAlive)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-c.closeCh:
			return
		case <-t.C:
			if err := f.write(protocol.Encode(&protocol.Message{
				Kind: protocol.KindPing, Timestamp: time.Now().UnixNano(),
			})); err != nil {
				f.close()
				return
			}
		}
	}
}

// detach clears the live connection state.
func (c *Client) detach(f framed) {
	f.close()
	c.mu.Lock()
	if c.framed == f {
		c.framed = nil
		c.conn = nil
		c.server = ""
	}
	c.mu.Unlock()
}

// readPump decodes and dispatches inbound frames until the connection
// fails.
func (c *Client) readPump(f framed) error {
	var dec protocol.StreamDecoder
	for {
		chunk, err := f.read()
		if len(chunk) > 0 {
			dec.Feed(chunk)
			for {
				m, derr := dec.Next()
				if derr != nil {
					return derr
				}
				if m == nil {
					break
				}
				c.dispatch(m)
			}
		}
		if err != nil {
			return err
		}
	}
}

// dispatch routes one inbound message.
func (c *Client) dispatch(m *protocol.Message) {
	switch m.Kind {
	case protocol.KindNotify:
		c.handleNotify(m)
	case protocol.KindPubAck:
		c.mu.Lock()
		ch := c.pending[m.ID]
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- m:
			default:
			}
		}
	case protocol.KindConnAck, protocol.KindSubAck, protocol.KindPong:
		// No client action required.
	case protocol.KindDisconnect:
		// Server-initiated disconnect (e.g. partition fencing): the read
		// loop will fail when the transport closes.
	}
}

// handleNotify updates the topic position, filters duplicates, and delivers
// the notification to the application.
func (c *Client) handleNotify(m *protocol.Message) {
	c.mu.Lock()
	tp, tracked := c.positions[m.Topic]
	if tracked {
		if m.Epoch > tp.Epoch || (m.Epoch == tp.Epoch && m.Seq > tp.Seq) {
			c.positions[m.Topic] = protocol.TopicPosition{
				Topic: m.Topic, Epoch: m.Epoch, Seq: m.Seq,
			}
		}
	}
	c.mu.Unlock()

	if c.filter != nil && m.ID != "" {
		if c.filter.Observe(fmt.Sprintf("%s|%s", m.Topic, m.ID)) {
			c.connects.duplicates.Add(1)
			return
		}
	}
	n := Notification{
		Topic:         m.Topic,
		Payload:       m.Payload,
		Epoch:         m.Epoch,
		Seq:           m.Seq,
		ID:            m.ID,
		Timestamp:     m.Timestamp,
		Retransmitted: m.Flags&protocol.FlagRetransmission != 0,
		Conflated:     m.Flags&protocol.FlagConflated != 0,
	}
	select {
	case c.notifications <- n:
	case <-c.closeCh:
	}
}

// rawClientFramed carries protocol frames directly over the connection.
type rawClientFramed struct {
	conn net.Conn
	buf  []byte
}

func newRawClientFramed(conn net.Conn) *rawClientFramed {
	return &rawClientFramed{conn: conn, buf: make([]byte, 8192)}
}

func (r *rawClientFramed) write(frame []byte) error {
	_, err := r.conn.Write(frame)
	return err
}

func (r *rawClientFramed) read() ([]byte, error) {
	n, err := r.conn.Read(r.buf)
	if n > 0 {
		out := make([]byte, n)
		copy(out, r.buf[:n])
		return out, err
	}
	return nil, err
}

func (r *rawClientFramed) close() error { return r.conn.Close() }

// wsClientFramed carries protocol frames inside WebSocket binary messages.
type wsClientFramed struct {
	ws *websocket.Conn
}

func (w *wsClientFramed) write(frame []byte) error {
	return w.ws.WriteMessage(websocket.OpBinary, frame)
}

func (w *wsClientFramed) read() ([]byte, error) {
	_, payload, err := w.ws.ReadMessage()
	return payload, err
}

func (w *wsClientFramed) close() error { return w.ws.Close() }
