package client_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"migratorydata/client"
	"migratorydata/server"
)

func TestSubscribeFromReplaysHistory(t *testing.T) {
	_, addr := startSingle(t, "ws")
	pub := newClient(t, "ws", addr)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 1; i <= 5; i++ {
		if err := pub.Publish(ctx, "history", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// A brand-new client resumes after seq 2: it must receive m3..m5 as
	// retransmissions before anything live.
	late := newClient(t, "ws", addr)
	if err := late.SubscribeFrom("history", 1, 2); err != nil {
		t.Fatal(err)
	}
	for i := 3; i <= 5; i++ {
		select {
		case n := <-late.Notifications():
			if string(n.Payload) != fmt.Sprintf("m%d", i) {
				t.Fatalf("replay %d = %q", i, n.Payload)
			}
			if !n.Retransmitted {
				t.Fatalf("replay %d not flagged as retransmission", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("replay %d never arrived", i)
		}
	}
	// And live delivery continues after the replay.
	if err := pub.Publish(ctx, "history", []byte("m6")); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-late.Notifications():
		if string(n.Payload) != "m6" || n.Retransmitted {
			t.Fatalf("live after replay = %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no live delivery after replay")
	}
}

func TestPositionTracksDelivery(t *testing.T) {
	_, addr := startSingle(t, "ws")
	sub := newClient(t, "ws", addr)
	sub.Subscribe("pos")
	time.Sleep(50 * time.Millisecond)
	if _, _, ok := sub.Position("unknown-topic"); ok {
		t.Fatal("Position for unsubscribed topic reported ok")
	}
	e, s, ok := sub.Position("pos")
	if !ok || e != 0 || s != 0 {
		t.Fatalf("initial position = %d/%d/%v", e, s, ok)
	}

	pub := newClient(t, "ws", addr)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	pub.Publish(ctx, "pos", []byte("x"))
	<-sub.Notifications()
	e, s, ok = sub.Position("pos")
	if !ok || e != 1 || s != 1 {
		t.Fatalf("position after delivery = %d/%d/%v, want 1/1", e, s, ok)
	}
}

func TestDedupFiltersReplayedDuplicates(t *testing.T) {
	_, addr := startSingle(t, "ws")
	pub := newClient(t, "ws", addr)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pub.Publish(ctx, "dup", []byte("once")); err != nil {
		t.Fatal(err)
	}

	sub := newClient(t, "ws", addr) // DedupWindow 256 via helper
	if err := sub.SubscribeFrom("dup", 1, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-sub.Notifications():
		if string(n.Payload) != "once" {
			t.Fatalf("first = %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no replay")
	}
	// Force a duplicate: re-request the same history range. The server
	// replays the same message; the dedup filter must drop it.
	if err := sub.SubscribeFrom("dup", 1, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-sub.Notifications():
		t.Fatalf("duplicate delivered to the application: %+v", n)
	case <-time.After(300 * time.Millisecond):
	}
	if sub.DuplicatesFiltered() != 1 {
		t.Fatalf("DuplicatesFiltered = %d, want 1", sub.DuplicatesFiltered())
	}
}

func TestPublishAsyncNotConnected(t *testing.T) {
	c, err := client.New(client.Config{
		Servers: []string{"nonexistent-server-xyz"},
		Network: "inproc",
		Seed:    99,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PublishAsync("t", []byte("x")); err == nil {
		t.Fatal("PublishAsync with no connection should fail")
	}
}

func TestPublishContextCancelled(t *testing.T) {
	c, err := client.New(client.Config{
		Servers: []string{"nonexistent-server-xyz2"},
		Network: "inproc",
		Seed:    100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := c.Publish(ctx, "t", []byte("x")); err == nil {
		t.Fatal("Publish with no reachable server should fail once ctx expires")
	}
}

func TestClientOverTCP(t *testing.T) {
	// Full TCP + WebSocket path: the deployment configuration the paper
	// actually runs.
	srv := server.New(server.Config{
		ID:            "tcp-e2e",
		ListenNetwork: "tcp",
		ListenAddr:    "127.0.0.1:0",
		IoThreads:     2,
		Workers:       2,
	})
	if err := srv.Start(); err != nil {
		t.Skipf("tcp unavailable: %v", err)
	}
	defer srv.Close()

	sub, err := client.New(client.Config{Servers: []string{srv.Addr()}, Network: "tcp", Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	sub.Subscribe("tcp-topic")
	time.Sleep(100 * time.Millisecond)

	pub, err := client.New(client.Config{Servers: []string{srv.Addr()}, Network: "tcp", Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := pub.Publish(ctx, "tcp-topic", []byte("over-tcp")); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-sub.Notifications():
		if string(n.Payload) != "over-tcp" {
			t.Fatalf("payload = %q", n.Payload)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no notification over TCP")
	}
}
