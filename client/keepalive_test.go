package client_test

import (
	"testing"
	"time"

	"migratorydata/client"
)

func TestKeepAlivePingsFlow(t *testing.T) {
	srv, addr := startSingle(t, "ws")
	c, err := client.New(client.Config{
		Servers:   []string{addr},
		Network:   "inproc",
		KeepAlive: 20 * time.Millisecond,
		Seed:      77,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitUntil(t, 2*time.Second, func() bool { return c.ConnectedServer() != "" })
	// Pings produce pongs, i.e. server-side outbound traffic on an
	// otherwise idle connection.
	before := srv.Stats().BytesOut
	waitUntil(t, 2*time.Second, func() bool { return srv.Stats().BytesOut > before })
}

func TestKeepAliveSurvivesReconnect(t *testing.T) {
	srv, addr := startSingle(t, "ws")
	c, err := client.New(client.Config{
		Servers:       []string{addr},
		Network:       "inproc",
		KeepAlive:     20 * time.Millisecond,
		ReconnectBase: 10 * time.Millisecond,
		ReconnectMax:  50 * time.Millisecond,
		BlacklistTTL:  50 * time.Millisecond,
		Seed:          78,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitUntil(t, 2*time.Second, func() bool { return c.ConnectedServer() != "" })
	srv.Engine().CloseAllClients()
	waitUntil(t, 5*time.Second, func() bool { return c.Reconnects() >= 1 })
	waitUntil(t, 2*time.Second, func() bool { return c.ConnectedServer() != "" })
}
