// Package client is the MigratoryData client SDK: the client-side logic the
// paper describes in §3 and §5.2.3. A Client connects to one server chosen
// from a hard-coded list (optionally weighted), subscribes to topics,
// receives ordered notifications, and publishes with at-least-once
// semantics. On connection failure it blacklists the server, backs off, and
// reconnects to another server, resuming every subscription from the last
// received (epoch, seq) so missed messages are recovered from the server's
// history cache — the subscriber never observes loss, only (possibly)
// duplicates, which an optional reception filter removes.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"migratorydata/internal/backoff"
	"migratorydata/internal/dedup"
	"migratorydata/internal/protocol"
	"migratorydata/internal/transport"
)

// Client errors.
var (
	ErrClosed         = errors.New("client: closed")
	ErrPublishTimeout = errors.New("client: publication not acknowledged")
	ErrNoServers      = errors.New("client: no servers configured")
)

// Notification is one received message.
type Notification struct {
	Topic     string
	Payload   []byte
	Epoch     uint32
	Seq       uint64
	ID        string
	Timestamp int64 // publisher's send time (UnixNano)
	// Retransmitted marks messages replayed from the history cache during
	// recovery rather than delivered live.
	Retransmitted bool
	// Conflated marks aggregates produced by server-side conflation.
	Conflated bool
}

// Config parametrizes a Client.
type Config struct {
	// Servers is the hard-coded server list (paper §5.1). Required.
	Servers []string
	// Weights optionally biases server selection for heterogeneous
	// deployments (§5.1 footnote 1). len(Weights) must equal len(Servers)
	// when non-nil.
	Weights []float64
	// Network is the transport network: "tcp" (default) or "inproc".
	Network string
	// Mode selects the framing: "ws" (default, WebSocket) or "raw".
	Mode string
	// ClientID names this client; it prefixes publication IDs. Default:
	// randomly generated.
	ClientID string
	// ReconnectBase/ReconnectMax configure the truncated exponential
	// back-off (§5.2.3). Defaults: 50ms / 2s.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// BlacklistTTL is how long a failed server is avoided. Default 5s.
	BlacklistTTL time.Duration
	// DedupWindow is the size of the duplicate-reception filter (§3); 0
	// disables filtering.
	DedupWindow int
	// PublishTimeout bounds one ack wait before the publication is
	// re-sent. Default 2s.
	PublishTimeout time.Duration
	// NotificationBuffer sizes the notification channel. Default 1024.
	NotificationBuffer int
	// KeepAlive, when > 0, sends an application-level PING every interval
	// so dead connections are detected even on quiet topics (§3: the
	// client-side logic "is responsible for detecting disconnections and
	// establishing a new channel").
	KeepAlive time.Duration
	// Dial overrides connection establishment (tests and in-process
	// harnesses). Default: transport.Dial(Network, addr).
	Dial func(network, addr string) (net.Conn, error)
	// Seed fixes randomized choices. Default: random.
	Seed int64
}

// Client is a MigratoryData subscriber/publisher connection manager.
type Client struct {
	cfg       Config
	rng       *rand.Rand
	rngMu     sync.Mutex
	blacklist *backoff.Blacklist
	policy    backoff.Policy
	filter    *dedup.Filter

	notifications chan Notification

	mu        sync.Mutex
	conn      net.Conn
	framed    framed
	positions map[string]protocol.TopicPosition // topic -> last received
	pending   map[string]chan *protocol.Message // publication ID -> ack
	connGen   int
	server    string // currently connected server

	pubSeq   atomic.Uint64
	closed   atomic.Bool
	closeCh  chan struct{}
	wg       sync.WaitGroup
	connects metrics
}

// metrics counts client-side events.
type metrics struct {
	connects   atomic.Int64
	reconnects atomic.Int64
	duplicates atomic.Int64
}

// framed abstracts the client's transport framing.
type framed interface {
	write(frame []byte) error
	read() ([]byte, error)
	close() error
}

// New constructs and starts a Client: the connection manager begins dialing
// immediately.
func New(cfg Config) (*Client, error) {
	if len(cfg.Servers) == 0 {
		return nil, ErrNoServers
	}
	if cfg.Network == "" {
		cfg.Network = "tcp"
	}
	if cfg.Mode == "" {
		cfg.Mode = "ws"
	}
	if cfg.ReconnectBase <= 0 {
		cfg.ReconnectBase = 50 * time.Millisecond
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = 2 * time.Second
	}
	if cfg.BlacklistTTL <= 0 {
		cfg.BlacklistTTL = 5 * time.Second
	}
	if cfg.PublishTimeout <= 0 {
		cfg.PublishTimeout = 2 * time.Second
	}
	if cfg.NotificationBuffer <= 0 {
		cfg.NotificationBuffer = 1024
	}
	if cfg.Seed == 0 {
		cfg.Seed = time.Now().UnixNano()
	}
	if cfg.ClientID == "" {
		cfg.ClientID = fmt.Sprintf("client-%08x", rand.New(rand.NewSource(cfg.Seed)).Uint32())
	}
	if cfg.Dial == nil {
		cfg.Dial = transport.Dial
	}
	c := &Client{
		cfg:           cfg,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		blacklist:     backoff.NewBlacklist(cfg.BlacklistTTL),
		policy:        backoff.NewExponential(cfg.ReconnectBase, cfg.ReconnectMax, cfg.Seed+1),
		notifications: make(chan Notification, cfg.NotificationBuffer),
		positions:     make(map[string]protocol.TopicPosition),
		pending:       make(map[string]chan *protocol.Message),
		closeCh:       make(chan struct{}),
	}
	if cfg.DedupWindow > 0 {
		c.filter = dedup.NewFilter(cfg.DedupWindow)
	}
	c.wg.Add(1)
	go c.sessionLoop()
	return c, nil
}

// Notifications returns the channel of received messages. The channel is
// closed when the client closes.
func (c *Client) Notifications() <-chan Notification { return c.notifications }

// ClientID reports the configured client identifier.
func (c *Client) ClientID() string { return c.cfg.ClientID }

// ConnectedServer reports the currently connected server ("" while
// reconnecting).
func (c *Client) ConnectedServer() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.server
}

// Reconnects reports how many times the client re-established its
// connection after the initial connect.
func (c *Client) Reconnects() int64 { return c.connects.reconnects.Load() }

// DuplicatesFiltered reports how many duplicate receptions the filter
// dropped.
func (c *Client) DuplicatesFiltered() int64 { return c.connects.duplicates.Load() }

// Subscribe registers the topics and (when connected) subscribes on the
// server. Subscriptions persist across reconnections, resuming from the
// last received position per topic.
func (c *Client) Subscribe(topics ...string) error {
	if c.closed.Load() {
		return ErrClosed
	}
	c.mu.Lock()
	var positions []protocol.TopicPosition
	for _, t := range topics {
		if _, ok := c.positions[t]; !ok {
			c.positions[t] = protocol.TopicPosition{Topic: t}
		}
		positions = append(positions, c.positions[t])
	}
	f := c.framed
	c.mu.Unlock()
	if f == nil {
		return nil // will subscribe on connect
	}
	return f.write(protocol.Encode(&protocol.Message{
		Kind: protocol.KindSubscribe, Topics: positions,
	}))
}

// SubscribeFrom subscribes to topic resuming after position (epoch, seq):
// the server replays every newer message from its history cache before
// live delivery continues. Applications use this to survive full restarts
// by persisting the last received Notification's (Epoch, Seq) themselves;
// for transient disconnections the client resumes automatically.
func (c *Client) SubscribeFrom(topic string, epoch uint32, seq uint64) error {
	if c.closed.Load() {
		return ErrClosed
	}
	pos := protocol.TopicPosition{Topic: topic, Epoch: epoch, Seq: seq}
	c.mu.Lock()
	c.positions[topic] = pos
	f := c.framed
	c.mu.Unlock()
	if f == nil {
		return nil
	}
	return f.write(protocol.Encode(&protocol.Message{
		Kind: protocol.KindSubscribe, Topics: []protocol.TopicPosition{pos},
	}))
}

// Position reports the last received (epoch, seq) for a subscribed topic —
// what an application persists to resume with SubscribeFrom after a
// restart.
func (c *Client) Position(topic string) (epoch uint32, seq uint64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tp, ok := c.positions[topic]
	return tp.Epoch, tp.Seq, ok
}

// Publish sends payload to topic with at-least-once semantics: it waits for
// the server acknowledgement and re-sends the publication (same ID) until
// acknowledged or ctx expires (§3: "otherwise, the publisher must re-send
// the publication").
func (c *Client) Publish(ctx context.Context, topic string, payload []byte) error {
	if c.closed.Load() {
		return ErrClosed
	}
	id := fmt.Sprintf("%s:%d", c.cfg.ClientID, c.pubSeq.Add(1))
	m := &protocol.Message{
		Kind: protocol.KindPublish, Topic: topic, ID: id,
		Payload: payload, Flags: protocol.FlagAckRequired,
	}
	for {
		err := c.publishOnce(ctx, m)
		if err == nil {
			return nil
		}
		if c.closed.Load() {
			return ErrClosed
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w: %v", ErrPublishTimeout, ctx.Err())
		case <-c.closeCh:
			return ErrClosed
		case <-time.After(10 * time.Millisecond):
			// republish
		}
	}
}

// publishOnce sends the publication and waits for one ack.
func (c *Client) publishOnce(ctx context.Context, m *protocol.Message) error {
	ackCh := make(chan *protocol.Message, 1)
	c.mu.Lock()
	c.pending[m.ID] = ackCh
	f := c.framed
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, m.ID)
		c.mu.Unlock()
	}()
	if f == nil {
		return errors.New("client: not connected")
	}
	m.Timestamp = time.Now().UnixNano()
	if err := f.write(protocol.Encode(m)); err != nil {
		return err
	}
	t := time.NewTimer(c.cfg.PublishTimeout)
	defer t.Stop()
	select {
	case ack := <-ackCh:
		if ack.Status != protocol.StatusOK {
			return fmt.Errorf("client: publication rejected (status %d)", ack.Status)
		}
		return nil
	case <-t.C:
		return ErrPublishTimeout
	case <-ctx.Done():
		return ctx.Err()
	case <-c.closeCh:
		return ErrClosed
	}
}

// PublishAsync sends payload with at-most-once semantics (no ack, QoS 0).
func (c *Client) PublishAsync(topic string, payload []byte) error {
	if c.closed.Load() {
		return ErrClosed
	}
	c.mu.Lock()
	f := c.framed
	c.mu.Unlock()
	if f == nil {
		return errors.New("client: not connected")
	}
	id := fmt.Sprintf("%s:%d", c.cfg.ClientID, c.pubSeq.Add(1))
	return f.write(protocol.Encode(&protocol.Message{
		Kind: protocol.KindPublish, Topic: topic, ID: id,
		Payload: payload, Timestamp: time.Now().UnixNano(),
	}))
}

// Close tears the client down.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	close(c.closeCh)
	c.mu.Lock()
	if c.conn != nil {
		c.conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
	close(c.notifications)
	return nil
}
