package client_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"migratorydata/client"
	"migratorydata/server"
)

var addrCounter int

func nextAddr(prefix string) string {
	addrCounter++
	return fmt.Sprintf("%s-%d", prefix, addrCounter)
}

// startSingle starts a single-node server on an inproc listener.
func startSingle(t *testing.T, mode string) (*server.Server, string) {
	t.Helper()
	addr := nextAddr("single")
	srv := server.New(server.Config{
		ID:            "s1",
		ListenNetwork: "inproc",
		ListenAddr:    addr,
		Mode:          mode,
		IoThreads:     2,
		Workers:       2,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func newClient(t *testing.T, mode string, servers ...string) *client.Client {
	t.Helper()
	c, err := client.New(client.Config{
		Servers:        servers,
		Network:        "inproc",
		Mode:           mode,
		ReconnectBase:  20 * time.Millisecond,
		ReconnectMax:   200 * time.Millisecond,
		BlacklistTTL:   500 * time.Millisecond,
		PublishTimeout: time.Second,
		DedupWindow:    256,
		Seed:           int64(addrCounter) + 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPublishSubscribeWebSocket(t *testing.T) {
	testPublishSubscribe(t, "ws")
}

func TestPublishSubscribeRaw(t *testing.T) {
	testPublishSubscribe(t, "raw")
}

func testPublishSubscribe(t *testing.T, mode string) {
	_, addr := startSingle(t, mode)
	sub := newClient(t, mode, addr)
	if err := sub.Subscribe("scores"); err != nil {
		t.Fatal(err)
	}
	// Give the subscription a moment to land before publishing.
	time.Sleep(50 * time.Millisecond)

	pub := newClient(t, mode, addr)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pub.Publish(ctx, "scores", []byte("1-0")); err != nil {
		t.Fatal(err)
	}

	select {
	case n := <-sub.Notifications():
		if n.Topic != "scores" || string(n.Payload) != "1-0" || n.Seq != 1 {
			t.Fatalf("notification = %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no notification")
	}
}

func TestPublishAsync(t *testing.T) {
	_, addr := startSingle(t, "ws")
	sub := newClient(t, "ws", addr)
	sub.Subscribe("t")
	time.Sleep(50 * time.Millisecond)

	pub := newClient(t, "ws", addr)
	// Wait until connected (PublishAsync does not retry).
	waitUntil(t, 2*time.Second, func() bool { return pub.ConnectedServer() != "" })
	if err := pub.PublishAsync("t", []byte("fire-and-forget")); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-sub.Notifications():
		if string(n.Payload) != "fire-and-forget" {
			t.Fatalf("payload = %q", n.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no notification")
	}
}

func TestOrderedDelivery(t *testing.T) {
	_, addr := startSingle(t, "ws")
	sub := newClient(t, "ws", addr)
	sub.Subscribe("seq")
	time.Sleep(50 * time.Millisecond)

	pub := newClient(t, "ws", addr)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	const n = 50
	for i := 0; i < n; i++ {
		if err := pub.Publish(ctx, "seq", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case got := <-sub.Notifications():
			if got.Seq != uint64(i+1) {
				t.Fatalf("notification %d has seq %d", i, got.Seq)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("missing notification %d", i)
		}
	}
}

func TestWeightedSelection(t *testing.T) {
	_, addr1 := startSingle(t, "ws")
	_, addr2 := startSingle(t, "ws")
	c, err := client.New(client.Config{
		Servers: []string{addr1, addr2},
		Weights: []float64{1, 0}, // always the first
		Network: "inproc",
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitUntil(t, 2*time.Second, func() bool { return c.ConnectedServer() == addr1 })
}

func TestClientCloseIdempotent(t *testing.T) {
	_, addr := startSingle(t, "ws")
	c := newClient(t, "ws", addr)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe("x"); err == nil {
		t.Fatal("Subscribe after Close should fail")
	}
}

func TestClusterFailoverSeamlessRecovery(t *testing.T) {
	// The paper's §5.2.3 subscriber recovery over the public API: a client
	// whose server crashes reconnects elsewhere and misses nothing.
	addrs := []string{nextAddr("fo"), nextAddr("fo"), nextAddr("fo")}
	clu, err := server.NewCluster(server.ClusterSpec{
		Members: []server.Config{
			{ID: "A", ListenNetwork: "inproc", ListenAddr: addrs[0], IoThreads: 2, Workers: 2, TopicGroups: 16},
			{ID: "B", ListenNetwork: "inproc", ListenAddr: addrs[1], IoThreads: 2, Workers: 2, TopicGroups: 16},
			{ID: "C", ListenNetwork: "inproc", ListenAddr: addrs[2], IoThreads: 2, Workers: 2, TopicGroups: 16},
		},
		SessionTTL: 300 * time.Millisecond,
		OpTimeout:  2 * time.Second,
		TickEvery:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()
	if err := clu.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Subscriber pinned to server A (single-element list, then expand).
	sub, err := client.New(client.Config{
		Servers: addrs, Network: "inproc",
		ReconnectBase: 10 * time.Millisecond, ReconnectMax: 100 * time.Millisecond,
		BlacklistTTL: 2 * time.Second, DedupWindow: 256, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	sub.Subscribe("game")
	time.Sleep(100 * time.Millisecond)

	pub := newClient(t, "ws", addrs...)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := pub.Publish(ctx, "game", []byte("before-crash")); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-sub.Notifications():
		if string(n.Payload) != "before-crash" {
			t.Fatalf("first notification = %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no first notification")
	}

	// Crash the subscriber's server.
	subServer := sub.ConnectedServer()
	crashIdx := -1
	for i, a := range addrs {
		if a == subServer {
			crashIdx = i
		}
	}
	if crashIdx < 0 {
		t.Fatalf("cannot locate subscriber's server %q", subServer)
	}
	// Make sure the publisher is NOT on the crashing server; its own
	// failover is exercised too, but the publication must eventually land.
	clu.Crash(crashIdx)

	// Publish while the subscriber is reconnecting.
	if err := pub.Publish(ctx, "game", []byte("during-failover")); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(ctx, "game", []byte("after-failover")); err != nil {
		t.Fatal(err)
	}

	// The subscriber must deliver both, in order, with no gap.
	want := []string{"during-failover", "after-failover"}
	for _, w := range want {
		select {
		case n := <-sub.Notifications():
			if string(n.Payload) != w {
				t.Fatalf("recovered %q, want %q", n.Payload, w)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("notification %q never arrived after failover", w)
		}
	}
	if sub.Reconnects() < 1 {
		t.Fatal("subscriber did not reconnect")
	}
	if sub.ConnectedServer() == subServer {
		t.Fatal("subscriber reconnected to the crashed server")
	}
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met within timeout")
}
